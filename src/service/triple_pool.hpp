// Background triple/λ-wire pool: the offline phase as a producer.
//
// The paper's offline phase (Pi_Offline) is circuit-dependent but
// input-independent, so for a fixed circuit shape whole preprocessed
// protocol instances can be banked ahead of demand and handed to sessions
// when they arrive — amortizing the dominant offline cost across a stream
// of sessions instead of paying it inline per request.  The pool runs
// `lanes` producer lanes on the service's virtual clock: each lane
// preprocesses one YosoMpc instance at a time (CPU work happens inside the
// event; the banked unit becomes claimable after the instance's own
// setup+offline virtual time has elapsed), parks when the bank is full,
// and resumes when a claim frees a slot.  Banked units are matched to
// sessions by Circuit::fingerprint(); a hit pays only online virtual
// latency, a miss falls back to a full inline run.  Hit/miss accounting is
// ledger-visible ("service.pool.hit"/"service.pool.miss" markers, written
// by MpcService) and exported as the `service.pool.depth` gauge.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/sync.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"

namespace yoso::service {

struct PoolConfig {
  unsigned lanes = 2;        // concurrent producer lanes
  std::size_t capacity = 8;  // banked + in-flight units before lanes park
  bool stalled = false;      // chaos knob: production never starts (all misses)

  // Adaptive target depth: lanes park at an EWMA-derived target —
  // ceil(EWMA produce time / EWMA interarrival), clamped to [1, capacity] —
  // instead of at capacity, so a slow trickle of sessions stops paying for
  // a full bank.  Until both EWMAs have samples the pool prefills to
  // capacity.  Exported as the `service.pool.target_depth` gauge.
  bool adaptive = false;
  double ewma_alpha = 0.3;  // weight of the newest sample

  // Lane self-healing: a failed production restarts the lane after capped
  // exponential backoff (the next unit draws fresh seeds) instead of
  // halting it for good.  0 keeps the legacy halt-on-failure behavior.
  unsigned max_lane_restarts = 0;  // per lane
  double restart_backoff_s = 0.1;
  double restart_backoff_cap_s = 5.0;
};

// One banked preprocessed instance.  The ledger/board/mpc triple moves into
// the claiming SessionRecord wholesale, so the session's ledger shows the
// production-time setup/offline traffic it is amortizing.
struct PooledUnit {
  std::uint64_t id = 0;
  std::uint64_t fingerprint = 0;
  double produced_at = -1;      // virtual time the unit became claimable
  double offline_virtual_s = 0; // setup+offline virtual seconds of production
  std::unique_ptr<Ledger> ledger;
  std::unique_ptr<net::NetBulletin> board;
  std::unique_ptr<YosoMpc> mpc;
};

struct PoolStats {
  std::size_t produced = 0;           // units banked
  std::size_t production_failed = 0;  // preprocess aborted (lane halts)
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t depth = 0;       // currently banked
  std::size_t peak_depth = 0;
  std::size_t target_depth = 0;   // current park threshold (adaptive sizing)
  std::size_t lane_restarts = 0;  // failed productions retried after backoff
  double hit_rate() const {
    return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
  }
};

class TriplePool {
public:
  // `loop` is the service's master event loop (must outlive the pool); all
  // production is scheduled on it.  Unit seeds derive from `seed` via
  // mix64(seed ^ unit_id), so a pool run is a pure function of its config.
  TriplePool(ProtocolParams params, Circuit circuit, net::NetConfig net, AdversaryPlan plan,
             std::uint64_t seed, PoolConfig cfg, net::EventLoop* loop);
  ~TriplePool();

  // Kicks every lane (no-op when stalled or lanes == 0).
  void start();
  // Stops lanes from starting further productions (in-flight units still bank).
  void halt();

  // Hands out the oldest banked unit when `fingerprint` matches; counts a
  // hit.  Returns nullptr (and counts a miss) when the bank is empty or the
  // shape differs.  Parked lanes resume on the freed slot.
  std::shared_ptr<PooledUnit> claim(std::uint64_t fingerprint);

  // Feeds the adaptive-target EWMA one session arrival (called by the
  // service at admission time); wakes parked lanes when the target grew.
  // No-op unless cfg.adaptive.
  void note_arrival();

  PoolStats stats() const;  // snapshot under the pool lock
  std::uint64_t fingerprint() const { return fingerprint_; }

  // Merges production traffic that no session ever claimed (still-banked
  // units and failed productions) into `into` — the service's aggregate
  // ledger view stays conservation-complete.
  void fold_unclaimed(Ledger& into) const;

  std::string report_json() const;

private:
  void lane_cycle(unsigned lane);
  void bank(unsigned lane, std::shared_ptr<PooledUnit> unit);
  void set_depth_gauge() REQUIRES(mu_);
  std::size_t target() REQUIRES(mu_);  // park threshold (capacity when not adaptive)
  void wake_parked() REQUIRES(mu_);

  ProtocolParams params_;
  Circuit circuit_;
  net::NetConfig net_;
  AdversaryPlan plan_;
  std::uint64_t seed_ = 0;
  PoolConfig cfg_;
  net::EventLoop* loop_;
  std::uint64_t fingerprint_ = 0;

  // Bank/lane state is shared between producer lanes and claiming sessions
  // once lanes run on worker threads (ROADMAP item 3); lock-protected and
  // annotated now so -Wthread-safety proves the discipline.  Production
  // itself (preprocess) runs outside the lock — only the state mutations
  // before and after are critical sections.
  mutable Mutex mu_;
  std::deque<std::shared_ptr<PooledUnit>> bank_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<PooledUnit>> retired_ GUARDED_BY(mu_);  // failed productions
  std::vector<bool> parked_ GUARDED_BY(mu_);
  std::vector<unsigned> restarts_ GUARDED_BY(mu_);  // per-lane restart budget used
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;  // preprocessed, banking event pending
  double ewma_interarrival_s_ GUARDED_BY(mu_) = 0;  // 0 = no sample yet
  double ewma_produce_s_ GUARDED_BY(mu_) = 0;       // 0 = no sample yet
  double last_arrival_s_ GUARDED_BY(mu_) = -1;
  bool halted_ GUARDED_BY(mu_) = false;
  std::uint64_t next_unit_ GUARDED_BY(mu_) = 0;
  PoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace yoso::service
