#include "service/session.hpp"

#include "common/json.hpp"

namespace yoso::service {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::Queued: return "queued";
    case SessionState::Running: return "running";
    case SessionState::Completed: return "completed";
    case SessionState::Failed: return "failed";
    case SessionState::Rejected: return "rejected";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::TooManyClients: return "too_many_clients";
    case RejectReason::TooDeep: return "too_deep";
    case RejectReason::BadInputs: return "bad_inputs";
    case RejectReason::ShuttingDown: return "shutting_down";
  }
  return "?";
}

std::string SessionRecord::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("id", static_cast<std::uint64_t>(id));
  w.field("tag", tag);
  w.field("priority", static_cast<std::uint64_t>(priority));
  w.field("state", session_state_name(state));
  w.field("reject_reason", reject_reason_name(reject_reason));
  w.field("submit_s", submit_s);
  w.field("start_s", start_s);
  w.field("finish_s", finish_s);
  w.field("latency_s", latency_s());
  w.field("pool_hit", pool_hit);
  w.field("attempts", static_cast<std::uint64_t>(attempts));
  w.field("resubmits", static_cast<std::uint64_t>(resubmits));
  w.field("degraded", degraded);
  w.field("timeouts", static_cast<std::uint64_t>(timeouts));
  if (timeouts > 0) w.field("timeout_phase", phase_name(timeout_phase));
  w.field("backoff_wait_s", backoff_wait_s);
  w.field("sunk_bytes", static_cast<std::uint64_t>(sunk_bytes));
  if (failure.has_value()) {
    w.key("failure").raw(failure->to_json());
  }
  if (!error.empty()) w.field("error", error);
  w.key("outputs").begin_array();
  for (const mpz_class& v : outputs) w.str(v.get_str());
  w.end_array();
  if (ledger) {
    w.key("ledger").raw(ledger->report_json());
  }
  w.end_object();
  return w.take();
}

}  // namespace yoso::service
