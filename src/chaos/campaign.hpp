// CampaignRunner + InvariantChecker: execute YosoMpc end-to-end over a
// NetBulletin under a FaultSchedule and machine-check the robustness
// contract:
//
//   * in-bounds schedules (Theorem 1 / Section 5.4) must deliver correct
//     outputs — guaranteed output delivery, possibly via the Section 5.4
//     degradation retry;
//   * out-of-bounds schedules must end in a *classified* failure — a
//     ProtocolAbort carrying a consistent FailureReport — never a crash,
//     a hang, or a wrong output;
//   * the board's post ledger obeys conservation per phase:
//     originated == delivered + dropped;
//   * the one-shot discipline is never violated (each committee's posts
//     form one contiguous window in the audit log).
//
// Campaigns are bit-for-bit deterministic: schedule i of a campaign is
// FaultSchedule::random(mix64(campaign_seed) ^ i), and every RunReport is
// a pure function of its schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "mpc/failure.hpp"

namespace yoso::chaos {

enum class Outcome : std::uint8_t {
  Correct,             // completed, outputs match the plaintext evaluation
  Recovered,           // strict attempt aborted; Section 5.4 retry completed
  ClassifiedAbort,     // ProtocolAbort with a consistent FailureReport
  WrongOutput,         // completed with outputs != plaintext evaluation
  Crash,               // escaped exception that is not a ProtocolAbort
  InvariantViolation,  // any machine-checked invariant failed
};

const char* outcome_name(Outcome o);

struct RunReport {
  FaultSchedule schedule;
  Outcome outcome = Outcome::Crash;
  bool in_bounds = false;                  // schedule statically guarantees GOD
  std::optional<FailureReport> failure;    // classified diagnosis, if any
  std::vector<std::string> violations;     // invariant violations (empty = ok)
  std::string crash_what;                  // what() of an escaped exception

  // Service-mode accounting (schedule.service_sessions > 0): session fates
  // and triple-pool hit/miss splits for the MpcService the run drove.
  std::size_t svc_completed = 0;
  std::size_t svc_failed = 0;
  std::size_t svc_rejected = 0;
  std::size_t svc_pool_hits = 0;
  std::size_t svc_pool_misses = 0;
  // Resilience accounting (Section 5.4 self-healing sessions).
  std::size_t svc_resubmits = 0;    // extra attempts across sessions
  std::size_t svc_timeouts = 0;     // attempts cut by the phase watchdog
  std::size_t svc_recovered = 0;    // sessions completed after resubmission
  double svc_backoff_wait_s = 0;    // total virtual backoff
  std::size_t svc_sunk_bytes = 0;   // abandoned-attempt bytes (ledger markers)

  // Board accounting, summed over every board the run used (two under
  // degradation: strict attempt + retry; one per session + unclaimed pool
  // production in service mode).
  std::size_t posts_originated = 0;
  std::size_t posts_delivered = 0;
  std::size_t posts_dropped = 0;
  std::size_t fuzz_rejected = 0;
  std::size_t fuzz_decoded = 0;
  std::size_t total_bytes = 0;       // ledger bytes of the final attempt
  std::size_t strict_attempt_bytes = 0;  // sunk cost of a failed strict attempt
  bool degraded = false;
  bool recovered = false;

  bool acceptable() const {
    return outcome == Outcome::Correct || outcome == Outcome::Recovered ||
           outcome == Outcome::ClassifiedAbort;
  }
  std::string to_json() const;
};

struct CampaignSummary {
  std::uint64_t campaign_seed = 0;
  std::size_t runs = 0;
  std::size_t correct = 0;
  std::size_t recovered = 0;
  std::size_t classified = 0;
  std::size_t wrong_output = 0;
  std::size_t crashed = 0;
  std::size_t invariant_violations = 0;
  std::vector<RunReport> unacceptable;  // every report that failed the contract

  bool all_acceptable() const { return unacceptable.empty(); }
  std::string to_json() const;
};

class CampaignRunner {
public:
  // Executes one schedule end-to-end; never throws — every exception is
  // classified into the report.
  static RunReport run_one(const FaultSchedule& schedule);

  // Runs `count` schedules derived deterministically from `campaign_seed`.
  // `on_run` (optional) observes each report as it completes.
  static CampaignSummary run_campaign(std::uint64_t campaign_seed, std::size_t count,
                                      const std::function<void(const RunReport&)>& on_run = {});

  // Service-mode campaign: every schedule targets an MpcService
  // (FaultSchedule::random_service), exercising admission, queueing and the
  // triple pool under the same layered faults and the same contract.
  static CampaignSummary run_service_campaign(
      std::uint64_t campaign_seed, std::size_t count,
      const std::function<void(const RunReport&)>& on_run = {});

  // WAN/churn resilience campaign: every schedule layers heterogeneous link
  // classes, background churn and a Section 5.4 resubmission budget on top
  // of the service-mode faults (FaultSchedule::random_churn).  The contract
  // extends per-session: every admitted session delivers within bounds —
  // possibly after bounded resubmission — or ends in a classified
  // FailureReport / watchdog timeout, and the retry accounting balances on
  // the ledger ("session.resubmit" marker == the record's sunk bytes).
  static CampaignSummary run_churn_campaign(
      std::uint64_t campaign_seed, std::size_t count,
      const std::function<void(const RunReport&)>& on_run = {});

  // The i-th schedule of a campaign (what run_campaign executes).
  static FaultSchedule campaign_schedule(std::uint64_t campaign_seed, std::size_t i);
  static FaultSchedule service_campaign_schedule(std::uint64_t campaign_seed, std::size_t i);
  static FaultSchedule churn_campaign_schedule(std::uint64_t campaign_seed, std::size_t i);
};

}  // namespace yoso::chaos
