#include "chaos/campaign.hpp"

#include <memory>
#include <set>
#include <sstream>

#include "common/json.hpp"
#include "mpc/protocol.hpp"
#include "net/wire_faults.hpp"  // mix64
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace yoso::chaos {

namespace {

// A NetBulletin together with the Ledger that backs it (the board holds a
// reference, so the pair must live and die together).
struct BoardBox {
  Ledger ledger;
  net::NetBulletin board;
  explicit BoardBox(net::NetConfig cfg) : board(ledger, std::move(cfg)) {}
};

std::vector<std::vector<mpz_class>> schedule_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(net::mix64(seed ^ 0x10901575ULL));
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1u << 16))));
    }
  }
  return inputs;
}

// Audit-log scan: committee posts must form one contiguous window each.
void check_one_shot(const Bulletin& board, std::vector<std::string>& violations) {
  std::set<std::string> closed;
  std::string open;
  for (const Post& p : board.log()) {
    if (p.external) continue;
    if (p.committee == open) continue;
    if (closed.count(p.committee) != 0) {
      violations.push_back("one-shot: committee " + p.committee + " posted after its window");
      return;
    }
    if (!open.empty()) closed.insert(open);
    open = p.committee;
  }
}

void check_board(const net::NetBulletin& board, RunReport& r) {
  for (Phase phase : {Phase::Setup, Phase::Offline, Phase::Online}) {
    const net::PhasePosts& pp = board.phase_posts(phase);
    if (!pp.conserved()) {
      std::ostringstream os;
      os << "conservation: phase " << phase_name(phase) << " originated=" << pp.originated
         << " delivered=" << pp.delivered << " dropped=" << pp.dropped();
      r.violations.push_back(os.str());
    }
  }
  const net::PhasePosts total = board.total_posts();
  r.posts_originated += total.originated;
  r.posts_delivered += total.delivered;
  r.posts_dropped += total.dropped();
  r.fuzz_rejected += board.fuzz_rejected();
  r.fuzz_decoded += board.fuzz_decoded();
  check_one_shot(board, r.violations);
}

bool report_consistent(const FailureReport& fr, unsigned n) {
  if (fr.kind == FailureKind::Consistency) return true;  // counts are informational
  return fr.verified < fr.threshold && fr.roles() == n && fr.threshold <= n;
}

// Service-mode run: the same fault layers, but the target is an MpcService
// multiplexing schedule.service_sessions sessions over a shared triple
// pool.  The contract lifts per-session: in-bounds schedules must complete
// every session correctly; every failed session must carry a classified,
// consistent FailureReport; each session board obeys conservation and the
// one-shot discipline; pool accounting must balance (hits + misses equals
// sessions run, and a stalled pool never serves a hit).
void run_one_service(const FaultSchedule& schedule, RunReport& r) {
  service::ServiceConfig cfg;
  cfg.n = schedule.n;
  cfg.eps = schedule.eps;
  cfg.paillier_bits = schedule.paillier_bits;
  cfg.failstop_mode = schedule.failstop_mode;
  cfg.seed = schedule.seed;
  cfg.max_concurrent = 2;
  cfg.max_queue = schedule.service_sessions;
  cfg.net = schedule.net_config();
  cfg.plan = schedule.adversary();
  cfg.pool.lanes = 1;
  cfg.pool.capacity = 2;
  cfg.pool.stalled = schedule.pool_stall;
  cfg.pool_circuit = schedule.circuit();
  // Resilience schedules turn on the self-healing layer: Section 5.4
  // resubmission with backoff, the phase watchdog, adaptive pool sizing and
  // a one-restart lane budget.  Plain service schedules keep every knob at
  // its legacy default, so their runs reproduce byte-for-byte.
  if (schedule.max_resubmits > 0 || schedule.phase_timeout_s > 0) {
    cfg.resilience.max_resubmits = schedule.max_resubmits;
    cfg.resilience.phase_timeout_s = schedule.phase_timeout_s;
    cfg.pool.adaptive = true;
    cfg.pool.max_lane_restarts = 1;
  }

  const Circuit circuit = schedule.circuit();
  std::vector<std::vector<std::vector<mpz_class>>> inputs;
  service::MpcService svc(cfg);
  for (unsigned i = 0; i < schedule.service_sessions; ++i) {
    inputs.push_back(
        schedule_inputs(circuit, net::mix64(schedule.seed ^ (0xabc0ULL + i))));
    service::SessionRequest req;
    req.tag = "chaos.session." + std::to_string(i);
    req.circuit = circuit;
    req.inputs = inputs.back();
    // Spaced past the pool's first banking time, so later sessions exercise
    // the hit path while the first usually misses cold.
    svc.submit_at(0.02 * static_cast<double>(i), std::move(req));
  }
  svc.run();

  bool any_failed = false, any_wrong = false;
  std::size_t ran = 0;
  for (const auto& rec : svc.sessions()) {
    if (!rec->terminal()) {
      r.violations.push_back("session " + std::to_string(rec->id) + " not terminal: " +
                             session_state_name(rec->state));
      continue;
    }
    switch (rec->state) {
      case service::SessionState::Rejected:
        ++r.svc_rejected;
        continue;  // never ran; no board to audit
      case service::SessionState::Completed: ++r.svc_completed; break;
      case service::SessionState::Failed: ++r.svc_failed; break;
      default: break;
    }
    ++ran;
    if (rec->board) {
      check_board(*rec->board, r);
      r.total_bytes += rec->ledger->total().bytes;
    }
    // Resilience contract: the resubmission budget is never exceeded, and
    // the retry bytes the final attempt's ledger carries under the
    // "session.resubmit" marker balance against the record's sunk-cost
    // accounting.
    r.svc_resubmits += rec->resubmits;
    r.svc_timeouts += rec->timeouts;
    r.svc_backoff_wait_s += rec->backoff_wait_s;
    r.svc_sunk_bytes += rec->sunk_bytes;
    if (rec->resubmits > schedule.max_resubmits) {
      r.violations.push_back("session " + std::to_string(rec->id) +
                             " exceeded the resubmission budget");
    }
    if (rec->ledger) {
      const auto& setup = rec->ledger->categories(Phase::Setup);
      const auto it = setup.find("session.resubmit");
      const std::size_t marker = it == setup.end() ? 0 : it->second.bytes;
      if (marker != rec->sunk_bytes) {
        r.violations.push_back("session " + std::to_string(rec->id) +
                               " retry ledger imbalance: marker " + std::to_string(marker) +
                               " != sunk " + std::to_string(rec->sunk_bytes));
      }
    }
    if (rec->state == service::SessionState::Completed) {
      if (rec->resubmits > 0) ++r.svc_recovered;
      const auto expected =
          circuit.eval(inputs[rec->id - 1], rec->plaintext_modulus);
      if (rec->outputs != expected) {
        any_wrong = true;
        r.violations.push_back("session " + std::to_string(rec->id) + " wrong output");
      }
    } else {
      any_failed = true;
      if (rec->failure) {
        if (!report_consistent(*rec->failure, schedule.n)) {
          r.violations.push_back("session " + std::to_string(rec->id) +
                                 " inconsistent FailureReport: " + rec->failure->describe());
        }
        if (!r.failure) r.failure = rec->failure;  // surface the first diagnosis
      } else if (rec->timeouts == 0) {
        // A watchdog cut is a classified failure in its own right; anything
        // else must carry a FailureReport.
        r.violations.push_back("session " + std::to_string(rec->id) +
                               " failed without a FailureReport: " + rec->error);
      }
    }
  }

  const service::PoolStats& pool = svc.pool().stats();
  r.svc_pool_hits = pool.hits;
  r.svc_pool_misses = pool.misses;
  if (pool.hits + pool.misses != ran) {
    r.violations.push_back("pool accounting: hits + misses != sessions run");
  }
  if (schedule.pool_stall && pool.hits != 0) {
    r.violations.push_back("stalled pool served a hit");
  }

  if (any_wrong) {
    r.outcome = Outcome::WrongOutput;
  } else if (any_failed) {
    r.outcome = Outcome::ClassifiedAbort;
  } else if (r.svc_recovered > 0) {
    // Every session delivered, at least one only via Section 5.4
    // resubmission: the self-healing layer recovered the run.
    r.recovered = true;
    r.outcome = Outcome::Recovered;
  } else {
    r.outcome = Outcome::Correct;
  }
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Correct: return "correct";
    case Outcome::Recovered: return "recovered";
    case Outcome::ClassifiedAbort: return "classified_abort";
    case Outcome::WrongOutput: return "wrong_output";
    case Outcome::Crash: return "crash";
    case Outcome::InvariantViolation: return "invariant_violation";
  }
  return "?";
}

RunReport CampaignRunner::run_one(const FaultSchedule& schedule) {
  obs::Span span("chaos.run", "chaos");
  span.attr("seed", std::to_string(schedule.seed))
      .attr("n", schedule.n)
      .attr("faults", schedule.active_faults());
  RunReport r;
  r.schedule = schedule;
  r.in_bounds = schedule.in_bounds();

  const Circuit circuit = schedule.circuit();
  const auto inputs = schedule_inputs(circuit, schedule.seed);
  std::vector<std::unique_ptr<BoardBox>> boards;
  const auto make_board = [&](bool) -> Bulletin* {
    boards.push_back(std::make_unique<BoardBox>(schedule.net_config()));
    return &boards.back()->board;
  };

  std::optional<OnlineResult> result;
  mpz_class modulus = 0;
  try {
    if (schedule.service_sessions > 0) {
      run_one_service(schedule, r);
    } else if (schedule.degradation) {
      DegradedRunResult d =
          run_with_degradation(schedule.n, schedule.eps, schedule.paillier_bits, circuit,
                               schedule.adversary(), schedule.seed, make_board, inputs);
      r.degraded = d.degraded;
      r.recovered = d.recovered;
      r.strict_attempt_bytes = d.strict_attempt_bytes;
      if (d.failure) r.failure = *d.failure;
      else if (d.strict_failure) r.failure = *d.strict_failure;
      result = d.result;
      modulus = d.plaintext_modulus;
      if (!d.ok()) {
        r.outcome = Outcome::ClassifiedAbort;
        if (!d.failure && !d.strict_failure) {
          r.violations.push_back("abort carried no FailureReport");
        }
      }
    } else {
      ProtocolParams params = schedule.params();
      Bulletin* board = make_board(false);
      YosoMpc mpc(params, circuit, schedule.adversary(), schedule.seed, board);
      result = mpc.run(inputs);
      modulus = mpc.plaintext_modulus();
    }
  } catch (const ProtocolAbort& abort) {
    r.outcome = Outcome::ClassifiedAbort;
    if (abort.report()) r.failure = *abort.report();
    else r.violations.push_back("abort carried no FailureReport: " + std::string(abort.what()));
  } catch (const std::invalid_argument& e) {
    // Parameter-space rejection (params::validate): the schedule asks for a
    // protocol outside the theorem; that is a classified, pre-run refusal.
    r.outcome = Outcome::ClassifiedAbort;
    r.crash_what = e.what();
  } catch (const std::exception& e) {
    r.outcome = Outcome::Crash;
    r.crash_what = e.what();
  } catch (...) {
    r.outcome = Outcome::Crash;
    r.crash_what = "non-standard exception";
  }

  for (auto& box : boards) {
    box->board.flush();
    check_board(box->board, r);
  }
  if (!boards.empty()) r.total_bytes = boards.back()->ledger.total().bytes;

  if (result) {
    const auto expected = circuit.eval(inputs, modulus);
    if (result->outputs == expected) {
      r.outcome = r.recovered ? Outcome::Recovered : Outcome::Correct;
    } else {
      r.outcome = Outcome::WrongOutput;
    }
  }

  if (r.failure && !report_consistent(*r.failure, schedule.n)) {
    r.violations.push_back("inconsistent FailureReport: " + r.failure->describe());
  }
  if (r.in_bounds && r.outcome != Outcome::Correct && r.outcome != Outcome::Recovered) {
    r.violations.push_back(std::string("GOD violated in bounds: outcome ") +
                           outcome_name(r.outcome));
  }
  if (!r.violations.empty()) r.outcome = Outcome::InvariantViolation;
  span.attr("outcome", outcome_name(r.outcome));
  return r;
}

FaultSchedule CampaignRunner::campaign_schedule(std::uint64_t campaign_seed, std::size_t i) {
  return FaultSchedule::random(net::mix64(campaign_seed) ^ static_cast<std::uint64_t>(i));
}

FaultSchedule CampaignRunner::service_campaign_schedule(std::uint64_t campaign_seed,
                                                        std::size_t i) {
  return FaultSchedule::random_service(net::mix64(campaign_seed) ^
                                       static_cast<std::uint64_t>(i));
}

FaultSchedule CampaignRunner::churn_campaign_schedule(std::uint64_t campaign_seed,
                                                      std::size_t i) {
  return FaultSchedule::random_churn(net::mix64(campaign_seed) ^
                                     static_cast<std::uint64_t>(i));
}

namespace {

CampaignSummary run_campaign_with(
    std::uint64_t campaign_seed, std::size_t count,
    const std::function<FaultSchedule(std::uint64_t, std::size_t)>& schedule_for,
    const std::function<void(const RunReport&)>& on_run) {
  CampaignSummary s;
  s.campaign_seed = campaign_seed;
  for (std::size_t i = 0; i < count; ++i) {
    RunReport r = CampaignRunner::run_one(schedule_for(campaign_seed, i));
    ++s.runs;
    switch (r.outcome) {
      case Outcome::Correct: ++s.correct; break;
      case Outcome::Recovered: ++s.recovered; break;
      case Outcome::ClassifiedAbort: ++s.classified; break;
      case Outcome::WrongOutput: ++s.wrong_output; break;
      case Outcome::Crash: ++s.crashed; break;
      case Outcome::InvariantViolation: ++s.invariant_violations; break;
    }
    if (!r.acceptable()) s.unacceptable.push_back(r);
    if (on_run) on_run(r);
  }
  return s;
}

}  // namespace

CampaignSummary CampaignRunner::run_campaign(std::uint64_t campaign_seed, std::size_t count,
                                             const std::function<void(const RunReport&)>& on_run) {
  return run_campaign_with(campaign_seed, count, &CampaignRunner::campaign_schedule, on_run);
}

CampaignSummary CampaignRunner::run_service_campaign(
    std::uint64_t campaign_seed, std::size_t count,
    const std::function<void(const RunReport&)>& on_run) {
  return run_campaign_with(campaign_seed, count, &CampaignRunner::service_campaign_schedule,
                           on_run);
}

CampaignSummary CampaignRunner::run_churn_campaign(
    std::uint64_t campaign_seed, std::size_t count,
    const std::function<void(const RunReport&)>& on_run) {
  return run_campaign_with(campaign_seed, count, &CampaignRunner::churn_campaign_schedule,
                           on_run);
}

std::string RunReport::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("outcome", outcome_name(outcome));
  w.field("in_bounds", in_bounds ? 1 : 0);
  w.field("degraded", degraded ? 1 : 0);
  w.field("recovered", recovered ? 1 : 0);
  w.field("posts_originated", static_cast<std::uint64_t>(posts_originated));
  w.field("posts_delivered", static_cast<std::uint64_t>(posts_delivered));
  w.field("posts_dropped", static_cast<std::uint64_t>(posts_dropped));
  w.field("fuzz_rejected", static_cast<std::uint64_t>(fuzz_rejected));
  w.field("fuzz_decoded", static_cast<std::uint64_t>(fuzz_decoded));
  w.field("total_bytes", static_cast<std::uint64_t>(total_bytes));
  w.field("strict_attempt_bytes", static_cast<std::uint64_t>(strict_attempt_bytes));
  if (schedule.service_sessions > 0) {
    w.key("service").begin_object();
    w.field("sessions", schedule.service_sessions);
    w.field("completed", static_cast<std::uint64_t>(svc_completed));
    w.field("failed", static_cast<std::uint64_t>(svc_failed));
    w.field("rejected", static_cast<std::uint64_t>(svc_rejected));
    w.field("pool_hits", static_cast<std::uint64_t>(svc_pool_hits));
    w.field("pool_misses", static_cast<std::uint64_t>(svc_pool_misses));
    w.field("resubmits", static_cast<std::uint64_t>(svc_resubmits));
    w.field("timeouts", static_cast<std::uint64_t>(svc_timeouts));
    w.field("recovered_sessions", static_cast<std::uint64_t>(svc_recovered));
    w.field("backoff_wait_s", svc_backoff_wait_s);
    w.field("sunk_bytes", static_cast<std::uint64_t>(svc_sunk_bytes));
    w.end_object();
  }
  if (failure) w.key("failure").raw(failure->to_json());
  if (!violations.empty()) {
    w.key("violations").begin_array();
    for (const std::string& v : violations) w.str(v);
    w.end_array();
  }
  if (!crash_what.empty()) w.field("what", crash_what);
  w.key("schedule").raw(schedule.to_json());
  w.end_object();
  return w.take();
}

std::string CampaignSummary::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("campaign_seed", campaign_seed);
  w.field("runs", static_cast<std::uint64_t>(runs));
  w.field("correct", static_cast<std::uint64_t>(correct));
  w.field("recovered", static_cast<std::uint64_t>(recovered));
  w.field("classified", static_cast<std::uint64_t>(classified));
  w.field("wrong_output", static_cast<std::uint64_t>(wrong_output));
  w.field("crashed", static_cast<std::uint64_t>(crashed));
  w.field("invariant_violations", static_cast<std::uint64_t>(invariant_violations));
  w.key("unacceptable").begin_array();
  for (const RunReport& rr : unacceptable) w.raw(rr.to_json());
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace yoso::chaos
