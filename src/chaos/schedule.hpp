// FaultSchedule: one deterministic, seeded, composable description of every
// fault a chaos run injects, spanning all three layers the stack exposes:
//
//   * adversary corruption (yoso::AdversaryPlan)   — malicious / fail-stop
//     roles per committee and the malicious strategy;
//   * link faults (net::FaultPlan)                 — dead links realized as
//     fail-stop roles, per-message drops, added delay;
//   * wire faults (net::WireFaultPlan)             — bit-flipped payloads,
//     truncated frames, duplicate posts, late posts at the codec boundary.
//
// A schedule is a value: serializable to flat JSON and back (the minimal
// reproducer format the ScheduleMinimizer emits), sampleable from a single
// seed, and statically classifiable — in_bounds() says whether Theorem 1 /
// Section 5.4 guarantee output delivery under it, which is what the
// campaign's invariants key on.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "mpc/params.hpp"
#include "net/net_bulletin.hpp"
#include "yoso/adversary.hpp"

namespace yoso::chaos {

struct FaultSchedule {
  // --- Protocol instance ---------------------------------------------------
  std::uint64_t seed = 1;       // protocol rng + all fault decision streams
  unsigned n = 6;               // committee size
  double eps = 0.25;            // the gap t < n(1/2 - eps)
  unsigned paillier_bits = 128;
  bool failstop_mode = false;   // run with the Section 5.4 parameterization
  unsigned circuit_width = 2;   // wide_mul_circuit(circuit_width)
  bool degradation = false;     // drive via run_with_degradation

  // --- Adversary corruption ------------------------------------------------
  unsigned malicious = 0;       // actively corrupt roles per committee
  unsigned failstop = 0;        // adversarially crashed roles per committee
  MaliciousStrategy strategy = MaliciousStrategy::BadShare;

  // --- Link faults (net::FaultPlan) ----------------------------------------
  unsigned silenced = 0;        // honest roles with dead links per committee
  double extra_delay_s = 0;
  double drop_prob = 0;

  // --- Network class + churn (net::LinkClassMix / net::ChurnPlan) ----------
  // link_class names either a uniform LinkModel preset ("lan", "wan", ...)
  // or a heterogeneous mix ("geo-mix", "mobile-edge") assigning every party
  // a deterministic per-member profile.
  std::string link_class = "lan";
  double churn_prob = 0;        // per-role departure probability at spawn
  unsigned churn_cap = 0;       // max departures per committee (0 = unbounded)

  // --- Self-healing (service::ResilienceConfig) ----------------------------
  double phase_timeout_s = 0;   // per-phase silence watchdog (0 = off)
  unsigned max_resubmits = 0;   // Section 5.4 resubmission budget per session

  // --- Wire faults (net::WireFaultPlan) ------------------------------------
  double bitflip_prob = 0;
  double truncate_prob = 0;
  double duplicate_prob = 0;
  double late_prob = 0;
  double late_delay_s = 1.0;
  double grace_window_s = 0;    // NetBulletin grace for late posts

  // --- Service-mode target (src/service) -----------------------------------
  // When service_sessions > 0 the campaign drives an MpcService — admission,
  // queueing, the background triple pool — instead of a single bare YosoMpc
  // run, submitting that many sessions of circuit() under the same fault
  // layers.  pool_stall starves the pool (production never starts), forcing
  // every session onto the inline miss path.
  unsigned service_sessions = 0;
  bool pool_stall = false;

  // Derived protocol parameters for this schedule.
  ProtocolParams params() const;
  Circuit circuit() const;
  AdversaryPlan adversary() const;
  net::NetConfig net_config() const;

  // True when Theorem 1 (resp. Section 5.4 in failstop_mode) statically
  // guarantees output delivery: every committee keeps at least
  // recon_threshold() speaking honest roles and no probabilistic loss can
  // silence further ones.  Duplicates and graced late posts are harmless.
  bool in_bounds() const;

  // Number of fault dimensions this schedule actually exercises (the
  // minimizer's size metric).
  unsigned active_faults() const;

  std::string to_json() const;
  static FaultSchedule from_json(const std::string& json);

  // Deterministic sampler: the same seed always yields the same schedule.
  // Mixes in-bounds and out-of-bounds regions so a campaign exercises both
  // the GOD invariant and the classified-failure invariant.
  static FaultSchedule random(std::uint64_t seed);
  // Service-mode sampler: random(seed) plus a session count and pool-stall
  // roll.  Kept separate so existing campaign seeds keep reproducing the
  // exact single-run schedules they always did.
  static FaultSchedule random_service(std::uint64_t seed);
  // WAN/churn sampler: random_service(seed) plus a link class (uniform or
  // heterogeneous mix), background churn, and a Section 5.4 resubmission
  // budget — the resilience campaign's schedule space.  The decorrelated
  // extra stream leaves the base service draws untouched.
  static FaultSchedule random_churn(std::uint64_t seed);

  bool operator==(const FaultSchedule&) const = default;
};

}  // namespace yoso::chaos
