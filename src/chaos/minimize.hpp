// ScheduleMinimizer: delta-debugging shrink of a violating FaultSchedule.
//
// Given a schedule under which some predicate holds (typically "run_one
// reports an unacceptable outcome"), the minimizer searches for a smaller
// schedule under which it still holds: first it tries to zero out whole
// fault dimensions (ddmin over the dimension set), then to halve the
// magnitude of each surviving dimension, iterating to a fixpoint.  The
// result is the minimal reproducer — few active fault dimensions, small
// magnitudes — emitted as seed + JSON for regression capture.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/schedule.hpp"

namespace yoso::chaos {

class ScheduleMinimizer {
public:
  // Returns true when the schedule still exhibits the behaviour being
  // minimized (the "interesting" predicate of delta debugging).
  using Predicate = std::function<bool(const FaultSchedule&)>;

  struct Result {
    FaultSchedule schedule;   // minimal schedule still satisfying the predicate
    std::size_t tests = 0;    // predicate evaluations spent
  };

  // `schedule` must satisfy `still_fails` (throws std::invalid_argument
  // otherwise — minimizing a passing schedule is a harness bug).
  static Result minimize(const FaultSchedule& schedule, const Predicate& still_fails);
};

}  // namespace yoso::chaos
