#include "chaos/minimize.hpp"

#include <stdexcept>
#include <vector>

namespace yoso::chaos {

namespace {

// Halving bottoms out at zero below this floor, so phase 2 terminates in a
// handful of predicate evaluations per dimension.
void halve_real(double& v) { v = v < 0.01 ? 0 : v / 2; }

// One shrinkable fault dimension: how to zero it and how to halve it.
struct Dimension {
  const char* name;
  bool (*is_active)(const FaultSchedule&);
  void (*zero)(FaultSchedule&);
  void (*halve)(FaultSchedule&);  // must strictly reduce when active
};

const Dimension kDimensions[] = {
    {"malicious", [](const FaultSchedule& s) { return s.malicious > 0; },
     [](FaultSchedule& s) { s.malicious = 0; }, [](FaultSchedule& s) { s.malicious /= 2; }},
    {"failstop", [](const FaultSchedule& s) { return s.failstop > 0; },
     [](FaultSchedule& s) { s.failstop = 0; }, [](FaultSchedule& s) { s.failstop /= 2; }},
    {"silenced", [](const FaultSchedule& s) { return s.silenced > 0; },
     [](FaultSchedule& s) { s.silenced = 0; }, [](FaultSchedule& s) { s.silenced /= 2; }},
    {"extra_delay", [](const FaultSchedule& s) { return s.extra_delay_s > 0; },
     [](FaultSchedule& s) { s.extra_delay_s = 0; },
     [](FaultSchedule& s) { halve_real(s.extra_delay_s); }},
    {"drop", [](const FaultSchedule& s) { return s.drop_prob > 0; },
     [](FaultSchedule& s) { s.drop_prob = 0; },
     [](FaultSchedule& s) { halve_real(s.drop_prob); }},
    {"bitflip", [](const FaultSchedule& s) { return s.bitflip_prob > 0; },
     [](FaultSchedule& s) { s.bitflip_prob = 0; },
     [](FaultSchedule& s) { halve_real(s.bitflip_prob); }},
    {"truncate", [](const FaultSchedule& s) { return s.truncate_prob > 0; },
     [](FaultSchedule& s) { s.truncate_prob = 0; },
     [](FaultSchedule& s) { halve_real(s.truncate_prob); }},
    {"duplicate", [](const FaultSchedule& s) { return s.duplicate_prob > 0; },
     [](FaultSchedule& s) { s.duplicate_prob = 0; },
     [](FaultSchedule& s) { halve_real(s.duplicate_prob); }},
    {"late", [](const FaultSchedule& s) { return s.late_prob > 0; },
     [](FaultSchedule& s) { s.late_prob = 0; },
     [](FaultSchedule& s) { halve_real(s.late_prob); }},
    {"churn", [](const FaultSchedule& s) { return s.churn_prob > 0; },
     [](FaultSchedule& s) {
       s.churn_prob = 0;
       s.churn_cap = 0;
     },
     [](FaultSchedule& s) { halve_real(s.churn_prob); }},
    // The link class shrinks to the uniform baseline or not at all (there is
    // no meaningful "half a WAN"); halving is the same step, and the no-op
    // candidate == schedule skip keeps phase 2 terminating.
    {"link_class", [](const FaultSchedule& s) { return s.link_class != "lan"; },
     [](FaultSchedule& s) { s.link_class = "lan"; },
     [](FaultSchedule& s) { s.link_class = "lan"; }},
};

}  // namespace

ScheduleMinimizer::Result ScheduleMinimizer::minimize(const FaultSchedule& schedule,
                                                      const Predicate& still_fails) {
  Result res;
  res.schedule = schedule;
  ++res.tests;
  if (!still_fails(res.schedule)) {
    throw std::invalid_argument("ScheduleMinimizer: the input schedule does not fail");
  }

  // Phase 0 (subset probe): fault dimensions interact — wire-fault rolls
  // share one cumulative-probability stream, and thresholds fail only under
  // combined loss — so greedy one-at-a-time removal can strand the search
  // in a local minimum.  Probe every singleton, then every pair, of the
  // originally active dimensions with all others zeroed; the first failing
  // subset wins.
  std::vector<const Dimension*> active;
  for (const Dimension& d : kDimensions) {
    if (d.is_active(res.schedule)) active.push_back(&d);
  }
  const auto keep_only = [&](const std::vector<const Dimension*>& keep) {
    FaultSchedule candidate = res.schedule;
    for (const Dimension& d : kDimensions) {
      bool kept = false;
      for (const Dimension* k : keep) kept = kept || k == &d;
      if (!kept) d.zero(candidate);
    }
    return candidate;
  };
  bool reduced = false;
  for (std::size_t subset_size = 1; subset_size <= 2 && !reduced && active.size() > subset_size;
       ++subset_size) {
    for (std::size_t i = 0; i < active.size() && !reduced; ++i) {
      for (std::size_t j = i; j < (subset_size == 1 ? i + 1 : active.size()) && !reduced; ++j) {
        std::vector<const Dimension*> keep{active[i]};
        if (j != i) keep.push_back(active[j]);
        if (keep.size() != subset_size) continue;
        FaultSchedule candidate = keep_only(keep);
        if (candidate == res.schedule) continue;
        ++res.tests;
        if (still_fails(candidate)) {
          res.schedule = candidate;
          reduced = true;
        }
      }
    }
  }

  // Phase 1 (greedy removal): repeatedly try to remove each remaining
  // active dimension outright, to a fixpoint.  Removing one dimension can
  // unlock removing another (faults compose), hence the outer loop.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Dimension& d : kDimensions) {
      if (!d.is_active(res.schedule)) continue;
      FaultSchedule candidate = res.schedule;
      d.zero(candidate);
      ++res.tests;
      if (still_fails(candidate)) {
        res.schedule = candidate;
        changed = true;
      }
    }
  }

  // Phase 2: shrink the magnitude of every surviving dimension (halving,
  // again to a fixpoint — bounded since each halving strictly reduces).
  changed = true;
  while (changed) {
    changed = false;
    for (const Dimension& d : kDimensions) {
      if (!d.is_active(res.schedule)) continue;
      FaultSchedule candidate = res.schedule;
      d.halve(candidate);
      if (candidate == res.schedule) continue;
      ++res.tests;
      if (still_fails(candidate)) {
        res.schedule = candidate;
        changed = true;
      }
    }
  }
  return res;
}

}  // namespace yoso::chaos
