#include "chaos/schedule.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "circuit/workloads.hpp"
#include "net/wire_faults.hpp"  // mix64 (deterministic sampling)

namespace yoso::chaos {

namespace {

// SplitMix64 stream for the sampler: fully determined by the seed, no
// std::random machinery anywhere near a schedule.
struct Stream {
  std::uint64_t state;
  explicit Stream(std::uint64_t seed) : state(net::mix64(seed ^ 0x9e3779b97f4a7c15ULL)) {}
  std::uint64_t next() {
    state = net::mix64(state + 0x9e3779b97f4a7c15ULL);
    return state;
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

double json_num(const std::string& json, const std::string& key, double fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  const char* start = json.c_str() + at + needle.size();
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) throw std::invalid_argument("FaultSchedule: bad value for " + key);
  return v;
}

std::uint64_t json_u64(const std::string& json, const std::string& key, std::uint64_t fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  const char* start = json.c_str() + at + needle.size();
  char* end = nullptr;
  unsigned long long v = std::strtoull(start, &end, 10);
  if (end == start) throw std::invalid_argument("FaultSchedule: bad value for " + key);
  return v;
}

}  // namespace

ProtocolParams FaultSchedule::params() const {
  return ProtocolParams::for_gap(n, eps, paillier_bits, failstop_mode);
}

Circuit FaultSchedule::circuit() const { return wide_mul_circuit(circuit_width); }

AdversaryPlan FaultSchedule::adversary() const {
  return AdversaryPlan::fixed(n, malicious, failstop, strategy);
}

net::NetConfig FaultSchedule::net_config() const {
  net::NetConfig cfg;
  cfg.faults.silence_per_committee = silenced;
  cfg.faults.extra_delay_s = extra_delay_s;
  cfg.faults.drop_prob = drop_prob;
  cfg.faults.seed = seed;
  cfg.wire_faults.bitflip_prob = bitflip_prob;
  cfg.wire_faults.truncate_prob = truncate_prob;
  cfg.wire_faults.duplicate_prob = duplicate_prob;
  cfg.wire_faults.late_prob = late_prob;
  cfg.wire_faults.late_delay_s = late_delay_s;
  cfg.wire_faults.seed = net::mix64(seed);  // decorrelated from the link stream
  cfg.grace_window_s = grace_window_s;
  return cfg;
}

bool FaultSchedule::in_bounds() const {
  ProtocolParams p;
  try {
    p = params();
  } catch (const std::invalid_argument&) {
    return false;  // the schedule itself is outside the theorem's parameter space
  }
  if (malicious > p.t) return false;
  // Probabilistic loss can silence any role: no static guarantee.
  if (drop_prob > 0 || bitflip_prob > 0 || truncate_prob > 0) return false;
  if (late_prob > 0 && late_delay_s > grace_window_s) return false;
  // Duplicates (ignored by the board) and graced late posts are harmless.
  const unsigned silent = failstop + silenced +
                          (strategy == MaliciousStrategy::Silent ? malicious : 0);
  const unsigned absent = silent + (strategy == MaliciousStrategy::Silent ? 0 : malicious);
  if (absent >= n) return false;
  return n - absent >= p.recon_threshold();
}

unsigned FaultSchedule::active_faults() const {
  unsigned active = 0;
  active += malicious > 0 ? 1 : 0;
  active += failstop > 0 ? 1 : 0;
  active += silenced > 0 ? 1 : 0;
  active += extra_delay_s > 0 ? 1 : 0;
  active += drop_prob > 0 ? 1 : 0;
  active += bitflip_prob > 0 ? 1 : 0;
  active += truncate_prob > 0 ? 1 : 0;
  active += duplicate_prob > 0 ? 1 : 0;
  active += late_prob > 0 ? 1 : 0;
  return active;
}

std::string FaultSchedule::to_json() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"seed\":" << seed << ",\"n\":" << n << ",\"eps\":" << eps
     << ",\"paillier_bits\":" << paillier_bits << ",\"failstop_mode\":" << (failstop_mode ? 1 : 0)
     << ",\"circuit_width\":" << circuit_width << ",\"degradation\":" << (degradation ? 1 : 0)
     << ",\"malicious\":" << malicious << ",\"failstop\":" << failstop
     << ",\"strategy\":" << static_cast<unsigned>(strategy) << ",\"silenced\":" << silenced
     << ",\"extra_delay_s\":" << extra_delay_s << ",\"drop_prob\":" << drop_prob
     << ",\"bitflip_prob\":" << bitflip_prob << ",\"truncate_prob\":" << truncate_prob
     << ",\"duplicate_prob\":" << duplicate_prob << ",\"late_prob\":" << late_prob
     << ",\"late_delay_s\":" << late_delay_s << ",\"grace_window_s\":" << grace_window_s << "}";
  return os.str();
}

FaultSchedule FaultSchedule::from_json(const std::string& json) {
  FaultSchedule s;
  s.seed = json_u64(json, "seed", s.seed);
  s.n = static_cast<unsigned>(json_u64(json, "n", s.n));
  s.eps = json_num(json, "eps", s.eps);
  s.paillier_bits = static_cast<unsigned>(json_u64(json, "paillier_bits", s.paillier_bits));
  s.failstop_mode = json_u64(json, "failstop_mode", 0) != 0;
  s.circuit_width = static_cast<unsigned>(json_u64(json, "circuit_width", s.circuit_width));
  s.degradation = json_u64(json, "degradation", 0) != 0;
  s.malicious = static_cast<unsigned>(json_u64(json, "malicious", 0));
  s.failstop = static_cast<unsigned>(json_u64(json, "failstop", 0));
  const auto strat = json_u64(json, "strategy", static_cast<unsigned>(s.strategy));
  if (strat > static_cast<unsigned>(MaliciousStrategy::HonestLooking)) {
    throw std::invalid_argument("FaultSchedule: unknown strategy " + std::to_string(strat));
  }
  s.strategy = static_cast<MaliciousStrategy>(strat);
  s.silenced = static_cast<unsigned>(json_u64(json, "silenced", 0));
  s.extra_delay_s = json_num(json, "extra_delay_s", 0);
  s.drop_prob = json_num(json, "drop_prob", 0);
  s.bitflip_prob = json_num(json, "bitflip_prob", 0);
  s.truncate_prob = json_num(json, "truncate_prob", 0);
  s.duplicate_prob = json_num(json, "duplicate_prob", 0);
  s.late_prob = json_num(json, "late_prob", 0);
  s.late_delay_s = json_num(json, "late_delay_s", s.late_delay_s);
  s.grace_window_s = json_num(json, "grace_window_s", 0);
  return s;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed) {
  Stream st(seed);
  FaultSchedule s;
  s.seed = seed;
  s.n = 5 + static_cast<unsigned>(st.below(2));  // 5 or 6
  s.eps = 0.25;
  s.paillier_bits = 128;
  s.circuit_width = 1 + static_cast<unsigned>(st.below(2));
  s.failstop_mode = st.below(4) == 0;
  s.degradation = st.below(4) == 0;
  switch (st.below(4)) {
    case 0: s.strategy = MaliciousStrategy::BadShare; break;
    case 1: s.strategy = MaliciousStrategy::BadProof; break;
    case 2: s.strategy = MaliciousStrategy::Silent; break;
    default: s.strategy = MaliciousStrategy::HonestLooking; break;
  }
  // At n in {5,6}, eps = 1/4: t = 1.  Sample 0..2 malicious so roughly a
  // third of schedules overshoot the corruption bound.
  s.malicious = static_cast<unsigned>(st.below(3));
  s.failstop = static_cast<unsigned>(st.below(2));
  s.silenced = static_cast<unsigned>(st.below(2));
  if (st.below(4) == 0) s.extra_delay_s = 0.005 + 0.02 * st.unit();
  if (st.below(3) == 0) s.drop_prob = 0.02 + 0.08 * st.unit();
  if (st.below(4) == 0) s.bitflip_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.truncate_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.duplicate_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.late_prob = 0.05 + 0.25 * st.unit();
  s.late_delay_s = 0.5;
  if (st.below(2) == 0) s.grace_window_s = 1.0;  // grace covers the late delay
  return s;
}

}  // namespace yoso::chaos
