#include "chaos/schedule.hpp"

#include <stdexcept>

#include "circuit/workloads.hpp"
#include "common/json.hpp"
#include "net/wire_faults.hpp"  // mix64 (deterministic sampling)

namespace yoso::chaos {

namespace {

// SplitMix64 stream for the sampler: fully determined by the seed, no
// std::random machinery anywhere near a schedule.
struct Stream {
  std::uint64_t state;
  explicit Stream(std::uint64_t seed) : state(net::mix64(seed ^ 0x9e3779b97f4a7c15ULL)) {}
  std::uint64_t next() {
    state = net::mix64(state + 0x9e3779b97f4a7c15ULL);
    return state;
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

}  // namespace

ProtocolParams FaultSchedule::params() const {
  return ProtocolParams::for_gap(n, eps, paillier_bits, failstop_mode);
}

Circuit FaultSchedule::circuit() const { return wide_mul_circuit(circuit_width); }

AdversaryPlan FaultSchedule::adversary() const {
  return AdversaryPlan::fixed(n, malicious, failstop, strategy);
}

net::NetConfig FaultSchedule::net_config() const {
  net::NetConfig cfg;
  if (link_class == "geo-mix" || link_class == "mobile-edge") {
    // Heterogeneous per-member profiles; the assignment seed is decorrelated
    // from the link-fault stream.
    cfg.link_mix = net::LinkClassMix::by_name(link_class, net::mix64(seed ^ 0x11acULL));
  } else if (link_class != "lan") {
    cfg.link = net::LinkModel::by_name(link_class);  // throws on unknown
  }
  if (churn_prob > 0) {
    cfg.churn.leave_prob = churn_prob;
    cfg.churn.max_per_committee = churn_cap;
    cfg.churn.seed = net::mix64(seed ^ 0xc09aULL);
  }
  cfg.faults.silence_per_committee = silenced;
  cfg.faults.extra_delay_s = extra_delay_s;
  cfg.faults.drop_prob = drop_prob;
  cfg.faults.seed = seed;
  cfg.wire_faults.bitflip_prob = bitflip_prob;
  cfg.wire_faults.truncate_prob = truncate_prob;
  cfg.wire_faults.duplicate_prob = duplicate_prob;
  cfg.wire_faults.late_prob = late_prob;
  cfg.wire_faults.late_delay_s = late_delay_s;
  cfg.wire_faults.seed = net::mix64(seed);  // decorrelated from the link stream
  cfg.grace_window_s = grace_window_s;
  return cfg;
}

bool FaultSchedule::in_bounds() const {
  ProtocolParams p;
  try {
    p = params();
  } catch (const std::invalid_argument&) {
    return false;  // the schedule itself is outside the theorem's parameter space
  }
  if (malicious > p.t) return false;
  // Probabilistic loss can silence any role: no static guarantee.
  if (drop_prob > 0 || bitflip_prob > 0 || truncate_prob > 0) return false;
  if (late_prob > 0 && late_delay_s > grace_window_s) return false;
  // Uncapped churn can empty a committee; the watchdog can cut a run that
  // would have delivered (conservative: no static guarantee either way).
  if (churn_prob > 0 && churn_cap == 0) return false;
  if (phase_timeout_s > 0) return false;
  // Duplicates (ignored by the board) and graced late posts are harmless.
  const unsigned churned = churn_prob > 0 ? churn_cap : 0;
  const unsigned silent = failstop + silenced + churned +
                          (strategy == MaliciousStrategy::Silent ? malicious : 0);
  const unsigned absent = silent + (strategy == MaliciousStrategy::Silent ? 0 : malicious);
  if (absent >= n) return false;
  return n - absent >= p.recon_threshold();
}

unsigned FaultSchedule::active_faults() const {
  unsigned active = 0;
  active += malicious > 0 ? 1 : 0;
  active += failstop > 0 ? 1 : 0;
  active += silenced > 0 ? 1 : 0;
  active += extra_delay_s > 0 ? 1 : 0;
  active += drop_prob > 0 ? 1 : 0;
  active += bitflip_prob > 0 ? 1 : 0;
  active += truncate_prob > 0 ? 1 : 0;
  active += duplicate_prob > 0 ? 1 : 0;
  active += late_prob > 0 ? 1 : 0;
  active += churn_prob > 0 ? 1 : 0;
  active += link_class != "lan" ? 1 : 0;
  return active;
}

std::string FaultSchedule::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("seed", seed);
  w.field("n", n);
  w.field("eps", eps);
  w.field("paillier_bits", paillier_bits);
  w.field("failstop_mode", failstop_mode ? 1 : 0);
  w.field("circuit_width", circuit_width);
  w.field("degradation", degradation ? 1 : 0);
  w.field("malicious", malicious);
  w.field("failstop", failstop);
  w.field("strategy", static_cast<std::uint32_t>(strategy));
  w.field("silenced", silenced);
  w.field("extra_delay_s", extra_delay_s);
  w.field("drop_prob", drop_prob);
  w.field("bitflip_prob", bitflip_prob);
  w.field("truncate_prob", truncate_prob);
  w.field("duplicate_prob", duplicate_prob);
  w.field("late_prob", late_prob);
  w.field("late_delay_s", late_delay_s);
  w.field("grace_window_s", grace_window_s);
  w.field("service_sessions", service_sessions);
  w.field("pool_stall", pool_stall ? 1 : 0);
  w.field("link_class", link_class);
  w.field("churn_prob", churn_prob);
  w.field("churn_cap", churn_cap);
  w.field("phase_timeout_s", phase_timeout_s);
  w.field("max_resubmits", max_resubmits);
  w.end_object();
  return w.take();
}

FaultSchedule FaultSchedule::from_json(const std::string& json) {
  json::Value doc;
  try {
    doc = json::parse(json);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("FaultSchedule: ") + e.what());
  }
  if (!doc.is_object()) throw std::invalid_argument("FaultSchedule: not a JSON object");
  FaultSchedule s;
  s.seed = doc.u64_or("seed", s.seed);
  s.n = static_cast<unsigned>(doc.u64_or("n", s.n));
  s.eps = doc.num_or("eps", s.eps);
  s.paillier_bits = static_cast<unsigned>(doc.u64_or("paillier_bits", s.paillier_bits));
  s.failstop_mode = doc.u64_or("failstop_mode", 0) != 0;
  s.circuit_width = static_cast<unsigned>(doc.u64_or("circuit_width", s.circuit_width));
  s.degradation = doc.u64_or("degradation", 0) != 0;
  s.malicious = static_cast<unsigned>(doc.u64_or("malicious", 0));
  s.failstop = static_cast<unsigned>(doc.u64_or("failstop", 0));
  const auto strat = doc.u64_or("strategy", static_cast<unsigned>(s.strategy));
  if (strat > static_cast<unsigned>(MaliciousStrategy::HonestLooking)) {
    throw std::invalid_argument("FaultSchedule: unknown strategy " + std::to_string(strat));
  }
  s.strategy = static_cast<MaliciousStrategy>(strat);
  s.silenced = static_cast<unsigned>(doc.u64_or("silenced", 0));
  s.extra_delay_s = doc.num_or("extra_delay_s", 0);
  s.drop_prob = doc.num_or("drop_prob", 0);
  s.bitflip_prob = doc.num_or("bitflip_prob", 0);
  s.truncate_prob = doc.num_or("truncate_prob", 0);
  s.duplicate_prob = doc.num_or("duplicate_prob", 0);
  s.late_prob = doc.num_or("late_prob", 0);
  s.late_delay_s = doc.num_or("late_delay_s", s.late_delay_s);
  s.grace_window_s = doc.num_or("grace_window_s", 0);
  s.service_sessions = static_cast<unsigned>(doc.u64_or("service_sessions", 0));
  s.pool_stall = doc.u64_or("pool_stall", 0) != 0;
  s.link_class = doc.str_or("link_class", s.link_class);
  if (s.link_class != "geo-mix" && s.link_class != "mobile-edge") {
    (void)net::LinkModel::by_name(s.link_class);  // throws on an unknown class
  }
  s.churn_prob = doc.num_or("churn_prob", 0);
  s.churn_cap = static_cast<unsigned>(doc.u64_or("churn_cap", 0));
  s.phase_timeout_s = doc.num_or("phase_timeout_s", 0);
  s.max_resubmits = static_cast<unsigned>(doc.u64_or("max_resubmits", 0));
  return s;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed) {
  Stream st(seed);
  FaultSchedule s;
  s.seed = seed;
  s.n = 5 + static_cast<unsigned>(st.below(2));  // 5 or 6
  s.eps = 0.25;
  s.paillier_bits = 128;
  s.circuit_width = 1 + static_cast<unsigned>(st.below(2));
  s.failstop_mode = st.below(4) == 0;
  s.degradation = st.below(4) == 0;
  switch (st.below(4)) {
    case 0: s.strategy = MaliciousStrategy::BadShare; break;
    case 1: s.strategy = MaliciousStrategy::BadProof; break;
    case 2: s.strategy = MaliciousStrategy::Silent; break;
    default: s.strategy = MaliciousStrategy::HonestLooking; break;
  }
  // At n in {5,6}, eps = 1/4: t = 1.  Sample 0..2 malicious so roughly a
  // third of schedules overshoot the corruption bound.
  s.malicious = static_cast<unsigned>(st.below(3));
  s.failstop = static_cast<unsigned>(st.below(2));
  s.silenced = static_cast<unsigned>(st.below(2));
  if (st.below(4) == 0) s.extra_delay_s = 0.005 + 0.02 * st.unit();
  if (st.below(3) == 0) s.drop_prob = 0.02 + 0.08 * st.unit();
  if (st.below(4) == 0) s.bitflip_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.truncate_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.duplicate_prob = 0.05 + 0.25 * st.unit();
  if (st.below(4) == 0) s.late_prob = 0.05 + 0.25 * st.unit();
  s.late_delay_s = 0.5;
  if (st.below(2) == 0) s.grace_window_s = 1.0;  // grace covers the late delay
  return s;
}

FaultSchedule FaultSchedule::random_service(std::uint64_t seed) {
  FaultSchedule s = random(seed);
  // A decorrelated stream for the service dimensions, so the base fault
  // sampler's draws stay exactly what random(seed) produces.
  Stream st(net::mix64(seed ^ 0x5e571ceULL));
  s.service_sessions = 2 + static_cast<unsigned>(st.below(3));  // 2..4 sessions
  s.pool_stall = st.below(4) == 0;
  return s;
}

FaultSchedule FaultSchedule::random_churn(std::uint64_t seed) {
  FaultSchedule s = random_service(seed);
  Stream st(net::mix64(seed ^ 0xc08a51ceULL));
  switch (st.below(4)) {
    case 0: s.link_class = "wan"; break;
    case 1: s.link_class = "geo-mix"; break;
    case 2: s.link_class = "mobile-edge"; break;
    default: s.link_class = "lan"; break;
  }
  s.churn_prob = 0.05 + 0.30 * st.unit();
  s.churn_cap = static_cast<unsigned>(st.below(3));  // 0 = uncapped (out of bounds)
  s.max_resubmits = 1 + static_cast<unsigned>(st.below(2));
  if (st.below(3) == 0) s.phase_timeout_s = 30.0;  // generous on these link classes
  // The resilience layer owns recovery here: strict first attempts, the
  // Section 5.4 parameterization only on resubmission.
  s.degradation = false;
  s.failstop_mode = false;
  return s;
}

}  // namespace yoso::chaos
