#include "wire/codec.hpp"

#include "crypto/transcript.hpp"
#include "obs/profile.hpp"

namespace yoso {

namespace {
constexpr std::uint8_t kTagLink = 0x01;
constexpr std::uint8_t kTagMult = 0x02;
constexpr std::uint8_t kTagRoot = 0x03;
constexpr std::uint8_t kTagMask = 0x04;
constexpr std::uint8_t kTagHandover = 0x05;
constexpr std::uint8_t kTagFuture = 0x06;
}  // namespace

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::mpz(const mpz_class& z) {
  auto b = mpz_to_bytes(z);
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::mpz_vec(const std::vector<mpz_class>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& z : v) mpz(z);
}

void Encoder::bytes(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Decoder::need(std::size_t n) const {
  if (pos_ + n > data_->size()) throw CodecError("decoder: truncated message");
}

std::uint8_t Decoder::u8() {
  need(1);
  return (*data_)[pos_++];
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>((*data_)[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>((*data_)[pos_++]) << (8 * i);
  return v;
}

mpz_class Decoder::mpz() {
  std::uint32_t len = u32();
  if (len == 0) throw CodecError("decoder: empty integer");
  need(len);
  std::vector<std::uint8_t> b(data_->begin() + pos_, data_->begin() + pos_ + len);
  pos_ += len;
  return mpz_from_bytes(b);
}

std::vector<mpz_class> Decoder::mpz_vec() {
  std::uint32_t count = u32();
  // Each element needs at least 5 bytes (length prefix + sign byte).
  if (static_cast<std::size_t>(count) * 5 > data_->size()) {
    throw CodecError("decoder: implausible vector length");
  }
  std::vector<mpz_class> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(mpz());
  return out;
}

void Decoder::expect_done() const {
  if (!done()) throw CodecError("decoder: trailing bytes");
}

// --- LinkProof -------------------------------------------------------------

std::vector<std::uint8_t> encode_link_proof(const LinkProof& p) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagLink);
  e.mpz_vec(p.a_paillier);
  e.mpz_vec(p.a_exponent);
  e.mpz(p.z);
  e.mpz_vec(p.z_rs);
  return e.data();
}

LinkProof decode_link_proof(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagLink) throw CodecError("link proof: bad tag");
  LinkProof p;
  p.a_paillier = d.mpz_vec();
  p.a_exponent = d.mpz_vec();
  p.z = d.mpz();
  p.z_rs = d.mpz_vec();
  d.expect_done();
  return p;
}

// --- MultProof -------------------------------------------------------------

std::vector<std::uint8_t> encode_mult_proof(const MultProof& p) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagMult);
  e.mpz(p.a1);
  e.mpz(p.a2);
  e.mpz(p.z);
  e.mpz(p.z1);
  e.mpz(p.z2);
  return e.data();
}

MultProof decode_mult_proof(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagMult) throw CodecError("mult proof: bad tag");
  MultProof p;
  p.a1 = d.mpz();
  p.a2 = d.mpz();
  p.z = d.mpz();
  p.z1 = d.mpz();
  p.z2 = d.mpz();
  d.expect_done();
  return p;
}

// --- RootProof -------------------------------------------------------------

std::vector<std::uint8_t> encode_root_proof(const RootProof& p) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagRoot);
  e.mpz(p.a);
  e.mpz(p.z);
  return e.data();
}

RootProof decode_root_proof(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagRoot) throw CodecError("root proof: bad tag");
  RootProof p;
  p.a = d.mpz();
  p.z = d.mpz();
  d.expect_done();
  return p;
}

// --- MaskMsg ---------------------------------------------------------------

std::vector<std::uint8_t> encode_mask_msg(const MaskMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagMask);
  e.mpz(m.a);
  e.mpz(m.b);
  e.bytes(encode_link_proof(m.proof));
  return e.data();
}

MaskMsg decode_mask_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagMask) throw CodecError("mask msg: bad tag");
  MaskMsg m;
  m.a = d.mpz();
  m.b = d.mpz();
  std::uint32_t len = d.u32();
  std::vector<std::uint8_t> inner;
  for (std::uint32_t i = 0; i < len; ++i) inner.push_back(d.u8());
  m.proof = decode_link_proof(inner);
  d.expect_done();
  return m;
}

// --- HandoverMsg -----------------------------------------------------------

std::vector<std::uint8_t> encode_handover_msg(const HandoverMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagHandover);
  e.u32(m.from_index);
  e.mpz_vec(m.commitments);
  e.mpz_vec(m.enc_subshares);
  e.u32(static_cast<std::uint32_t>(m.proofs.size()));
  for (const auto& p : m.proofs) e.bytes(encode_link_proof(p));
  return e.data();
}

HandoverMsg decode_handover_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagHandover) throw CodecError("handover msg: bad tag");
  HandoverMsg m;
  m.from_index = d.u32();
  m.commitments = d.mpz_vec();
  m.enc_subshares = d.mpz_vec();
  std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = d.u32();
    std::vector<std::uint8_t> inner;
    inner.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) inner.push_back(d.u8());
    m.proofs.push_back(decode_link_proof(inner));
  }
  d.expect_done();
  return m;
}

// --- FutureCt --------------------------------------------------------------

std::vector<std::uint8_t> encode_future_ct(const FutureCt& f) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagFuture);
  e.mpz(f.masked);
  e.mpz(f.pad_ct);
  return e.data();
}

FutureCt decode_future_ct(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagFuture) throw CodecError("future ct: bad tag");
  FutureCt f;
  f.masked = d.mpz();
  f.pad_ct = d.mpz();
  d.expect_done();
  return f;
}

// --- Per-role protocol posts -----------------------------------------------

namespace {

// Reads one length-prefixed embedded message (the counterpart of
// Encoder::bytes on an inner encode_* buffer).
std::vector<std::uint8_t> read_embedded(Decoder& d) {
  std::uint32_t len = d.u32();
  std::vector<std::uint8_t> inner;
  inner.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) inner.push_back(d.u8());
  return inner;
}

}  // namespace

std::vector<std::uint8_t> encode_pdec_msg(const PdecMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagPdecMsg);
  e.mpz_vec(m.partials);
  e.u32(static_cast<std::uint32_t>(m.proofs.size()));
  for (const auto& p : m.proofs) e.bytes(encode_link_proof(p.inner));
  return e.data();
}

PdecMsg decode_pdec_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagPdecMsg) throw CodecError("pdec msg: bad tag");
  PdecMsg m;
  m.partials = d.mpz_vec();
  std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    m.proofs.push_back(PdecProof{decode_link_proof(read_embedded(d))});
  }
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_contrib_msg(const ContribMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagContribMsg);
  e.mpz_vec(m.cts);
  e.u32(static_cast<std::uint32_t>(m.proofs.size()));
  for (const auto& p : m.proofs) e.bytes(encode_link_proof(p.inner));
  return e.data();
}

ContribMsg decode_contrib_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagContribMsg) throw CodecError("contrib msg: bad tag");
  ContribMsg m;
  m.cts = d.mpz_vec();
  std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    m.proofs.push_back(PlaintextProof{decode_link_proof(read_embedded(d))});
  }
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_beaver_msg(const BeaverMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagBeaverMsg);
  e.mpz_vec(m.cb);
  e.mpz_vec(m.cc);
  e.u32(static_cast<std::uint32_t>(m.proofs.size()));
  for (const auto& p : m.proofs) e.bytes(encode_mult_proof(p));
  return e.data();
}

BeaverMsg decode_beaver_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagBeaverMsg) throw CodecError("beaver msg: bad tag");
  BeaverMsg m;
  m.cb = d.mpz_vec();
  m.cc = d.mpz_vec();
  std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    m.proofs.push_back(decode_mult_proof(read_embedded(d)));
  }
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_mult_share_msg(const MultShareMsg& m) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagMultShareMsg);
  e.mpz_vec(m.p_int);
  e.u32(static_cast<std::uint32_t>(m.proofs.size()));
  for (const auto& p : m.proofs) e.bytes(encode_root_proof(p));
  return e.data();
}

MultShareMsg decode_mult_share_msg(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagMultShareMsg) throw CodecError("mult share msg: bad tag");
  MultShareMsg m;
  m.p_int = d.mpz_vec();
  std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    m.proofs.push_back(decode_root_proof(read_embedded(d)));
  }
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_mask_batch(const std::vector<MaskMsg>& batch) {
  OBS_OP(CodecEncode);
  Encoder e;
  e.u8(kTagMaskBatch);
  e.u32(static_cast<std::uint32_t>(batch.size()));
  for (const auto& m : batch) e.bytes(encode_mask_msg(m));
  return e.data();
}

std::vector<MaskMsg> decode_mask_batch(const std::vector<std::uint8_t>& data) {
  OBS_OP(CodecDecode);
  Decoder d(data);
  if (d.u8() != kTagMaskBatch) throw CodecError("mask batch: bad tag");
  std::uint32_t count = d.u32();
  if (static_cast<std::size_t>(count) * 5 > data.size()) {
    throw CodecError("mask batch: implausible count");
  }
  std::vector<MaskMsg> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(decode_mask_msg(read_embedded(d)));
  d.expect_done();
  return out;
}

std::uint8_t peek_tag(const std::vector<std::uint8_t>& data) {
  if (data.empty()) throw CodecError("peek_tag: empty message");
  return data.front();
}

const char* tag_name(std::uint8_t tag) {
  switch (tag) {
    case kTagLinkProof: return "LinkProof";
    case kTagMultProof: return "MultProof";
    case kTagRootProof: return "RootProof";
    case kTagMaskMsg: return "MaskMsg";
    case kTagHandoverMsg: return "HandoverMsg";
    case kTagFutureCt: return "FutureCt";
    case kTagPdecMsg: return "PdecMsg";
    case kTagContribMsg: return "ContribMsg";
    case kTagBeaverMsg: return "BeaverMsg";
    case kTagMultShareMsg: return "MultShareMsg";
    case kTagMaskBatch: return "MaskBatch";
  }
  return "unknown";
}

}  // namespace yoso
