// Canonical wire formats for every message the protocol broadcasts.
//
// A deployment posts these to a real bulletin board (a chain); the
// simulation uses them to (a) check that the Ledger's byte accounting
// tracks real serialized sizes and (b) exercise full encode -> decode ->
// verify round-trips in the tests.  The format is deliberately simple and
// self-describing: a tag byte per message type, little-endian u32 length
// prefixes, sign-magnitude big integers (crypto/transcript.cpp's canonical
// encoding).
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/reencrypt.hpp"
#include "nizk/link_proof.hpp"
#include "nizk/mult_proof.hpp"
#include "nizk/pdec_proof.hpp"
#include "nizk/plaintext_proof.hpp"
#include "nizk/root_proof.hpp"

namespace yoso {

struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Encoder {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void mpz(const mpz_class& z);
  void mpz_vec(const std::vector<mpz_class>& v);
  void bytes(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
public:
  explicit Decoder(const std::vector<std::uint8_t>& data) : data_(&data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  mpz_class mpz();
  std::vector<mpz_class> mpz_vec();

  bool done() const { return pos_ == data_->size(); }
  // Throws CodecError unless the whole buffer was consumed.
  void expect_done() const;

private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>* data_;
  std::size_t pos_ = 0;
};

// --- Message codecs (encode_x / decode_x pairs) ---------------------------

std::vector<std::uint8_t> encode_link_proof(const LinkProof& p);
LinkProof decode_link_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_mult_proof(const MultProof& p);
MultProof decode_mult_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_root_proof(const RootProof& p);
RootProof decode_root_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_mask_msg(const MaskMsg& m);
MaskMsg decode_mask_msg(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_handover_msg(const HandoverMsg& m);
HandoverMsg decode_handover_msg(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_future_ct(const FutureCt& f);
FutureCt decode_future_ct(const std::vector<std::uint8_t>& data);

// --- Per-role protocol posts ----------------------------------------------
// Each struct below is the single (multi-part) message one role broadcasts
// during one activation; the net transport ships these as real serialized
// payloads.  Vectors are indexed by the value/batch the role contributes to.

// A decrypt-committee role's post: partial decryptions with PdecProofs.
struct PdecMsg {
  std::vector<mpz_class> partials;
  std::vector<PdecProof> proofs;  // one per partial
};

std::vector<std::uint8_t> encode_pdec_msg(const PdecMsg& m);
PdecMsg decode_pdec_msg(const std::vector<std::uint8_t>& data);

// A contribution-committee role's post: fresh ciphertexts with proofs of
// plaintext knowledge (Beaver `a` legs, wire randomness).
struct ContribMsg {
  std::vector<mpz_class> cts;
  std::vector<PlaintextProof> proofs;  // one per ciphertext
};

std::vector<std::uint8_t> encode_contrib_msg(const ContribMsg& m);
ContribMsg decode_contrib_msg(const std::vector<std::uint8_t>& data);

// A Beaver `b` role's post: (c_b, c_c) pairs with multiplication proofs.
struct BeaverMsg {
  std::vector<mpz_class> cb;
  std::vector<mpz_class> cc;
  std::vector<MultProof> proofs;  // one per pair
};

std::vector<std::uint8_t> encode_beaver_msg(const BeaverMsg& m);
BeaverMsg decode_beaver_msg(const std::vector<std::uint8_t>& data);

// An online multiplication role's post: the public integer combinations
// P_int with their RootProofs, one per batch (Section 5.3).
struct MultShareMsg {
  std::vector<mpz_class> p_int;
  std::vector<RootProof> proofs;  // one per batch
};

std::vector<std::uint8_t> encode_mult_share_msg(const MultShareMsg& m);
MultShareMsg decode_mult_share_msg(const std::vector<std::uint8_t>& data);

// A mask-committee role's post: one MaskMsg per re-encrypted value.
std::vector<std::uint8_t> encode_mask_batch(const std::vector<MaskMsg>& batch);
std::vector<MaskMsg> decode_mask_batch(const std::vector<std::uint8_t>& data);

// Tag byte of an encoded message (the first byte); kTag* constants below.
std::uint8_t peek_tag(const std::vector<std::uint8_t>& data);
const char* tag_name(std::uint8_t tag);

inline constexpr std::uint8_t kTagLinkProof = 0x01;
inline constexpr std::uint8_t kTagMultProof = 0x02;
inline constexpr std::uint8_t kTagRootProof = 0x03;
inline constexpr std::uint8_t kTagMaskMsg = 0x04;
inline constexpr std::uint8_t kTagHandoverMsg = 0x05;
inline constexpr std::uint8_t kTagFutureCt = 0x06;
inline constexpr std::uint8_t kTagPdecMsg = 0x07;
inline constexpr std::uint8_t kTagContribMsg = 0x08;
inline constexpr std::uint8_t kTagBeaverMsg = 0x09;
inline constexpr std::uint8_t kTagMultShareMsg = 0x0A;
inline constexpr std::uint8_t kTagMaskBatch = 0x0B;

}  // namespace yoso
