// Canonical wire formats for every message the protocol broadcasts.
//
// A deployment posts these to a real bulletin board (a chain); the
// simulation uses them to (a) check that the Ledger's byte accounting
// tracks real serialized sizes and (b) exercise full encode -> decode ->
// verify round-trips in the tests.  The format is deliberately simple and
// self-describing: a tag byte per message type, little-endian u32 length
// prefixes, sign-magnitude big integers (crypto/transcript.cpp's canonical
// encoding).
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/reencrypt.hpp"
#include "nizk/link_proof.hpp"
#include "nizk/mult_proof.hpp"
#include "nizk/pdec_proof.hpp"
#include "nizk/plaintext_proof.hpp"
#include "nizk/root_proof.hpp"

namespace yoso {

struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Encoder {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void mpz(const mpz_class& z);
  void mpz_vec(const std::vector<mpz_class>& v);
  void bytes(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
public:
  explicit Decoder(const std::vector<std::uint8_t>& data) : data_(&data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  mpz_class mpz();
  std::vector<mpz_class> mpz_vec();

  bool done() const { return pos_ == data_->size(); }
  // Throws CodecError unless the whole buffer was consumed.
  void expect_done() const;

private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>* data_;
  std::size_t pos_ = 0;
};

// --- Message codecs (encode_x / decode_x pairs) ---------------------------

std::vector<std::uint8_t> encode_link_proof(const LinkProof& p);
LinkProof decode_link_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_mult_proof(const MultProof& p);
MultProof decode_mult_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_root_proof(const RootProof& p);
RootProof decode_root_proof(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_mask_msg(const MaskMsg& m);
MaskMsg decode_mask_msg(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_handover_msg(const HandoverMsg& m);
HandoverMsg decode_handover_msg(const std::vector<std::uint8_t>& data);

std::vector<std::uint8_t> encode_future_ct(const FutureCt& f);
FutureCt decode_future_ct(const std::vector<std::uint8_t>& data);

}  // namespace yoso
