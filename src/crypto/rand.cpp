#include "crypto/rand.hpp"

#include <random>
#include <stdexcept>

namespace yoso {

namespace {
std::uint64_t os_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}
}  // namespace

Rng::Rng() : Rng(os_seed()) {}

Rng::Rng(std::uint64_t seed) : state_(gmp_randinit_mt) {
  state_.seed(mpz_class(static_cast<unsigned long>(seed & 0xffffffffu)) +
              (mpz_class(static_cast<unsigned long>(seed >> 32)) << 32));
}

mpz_class Rng::below(const mpz_class& bound) {
  if (bound <= 0) throw std::invalid_argument("Rng::below: bound must be positive");
  return state_.get_z_range(bound);
}

mpz_class Rng::bits(unsigned bits) { return state_.get_z_bits(bits); }

mpz_class Rng::unit_mod(const mpz_class& n) {
  mpz_class g, r;
  do {
    r = below(n);
    mpz_gcd(g.get_mpz_t(), r.get_mpz_t(), n.get_mpz_t());
  } while (g != 1 || r == 0);
  return r;
}

mpz_class Rng::prime(unsigned bits) {
  if (bits < 3) throw std::invalid_argument("Rng::prime: too few bits");
  mpz_class p;
  do {
    p = this->bits(bits);
    mpz_setbit(p.get_mpz_t(), bits - 1);  // force exact bit length
    mpz_setbit(p.get_mpz_t(), 0);         // force odd
    mpz_nextprime(p.get_mpz_t(), p.get_mpz_t());
  } while (mpz_sizeinbase(p.get_mpz_t(), 2) != bits);
  return p;
}

mpz_class Rng::safe_prime(unsigned bits) {
  if (bits < 4) throw std::invalid_argument("Rng::safe_prime: too few bits");
  for (;;) {
    mpz_class q = prime(bits - 1);
    mpz_class p = 2 * q + 1;
    if (mpz_sizeinbase(p.get_mpz_t(), 2) == bits &&
        mpz_probab_prime_p(p.get_mpz_t(), 30) != 0) {
      return p;
    }
  }
}

std::uint64_t Rng::u64() {
  mpz_class z = bits(64);
  std::uint64_t lo = mpz_get_ui(z.get_mpz_t());  // low bits (GMP limb is 64-bit here)
  return lo;
}

std::uint64_t Rng::u64_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::u64_below: bound must be positive");
  mpz_class z = below(mpz_class(static_cast<unsigned long>(bound)));
  return mpz_get_ui(z.get_mpz_t());
}

double Rng::uniform01() {
  return static_cast<double>(u64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

}  // namespace yoso
