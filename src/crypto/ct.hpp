// Constant-time equality.  Ordinary `==` / memcmp return at the first
// differing byte, which lets an attacker binary-search a digest or MAC one
// byte at a time; every comparison whose operands derive from secret or
// attacker-supplied data goes through ct_equal instead (tools/lint rule
// `no-memcmp`).
//
// Lengths are treated as public: a length mismatch returns false without
// scanning, but for equal lengths the scan always touches every byte.
#pragma once

#include <gmpxx.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"

namespace yoso {

// Compares n bytes of a and b in time independent of their contents.
bool ct_equal(const void* a, const void* b, std::size_t n);

bool ct_equal(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b);

bool ct_equal(const Sha256::Digest& a, const Sha256::Digest& b);

// Compares two big integers via their canonical serializations
// (crypto/transcript.cpp's sign+magnitude form), touching every byte of the
// common length.  Magnitude *lengths* are public.
bool ct_equal(const mpz_class& a, const mpz_class& b);

}  // namespace yoso
