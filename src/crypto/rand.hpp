// Randomness source wrapping GMP's Mersenne-Twister state.
//
// All protocol code draws randomness through this class so that tests can
// run deterministically from a fixed seed.
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <vector>

namespace yoso {

class Rng {
public:
  // Seeds from the OS entropy source.
  Rng();
  // Deterministic seed (tests, reproducible benches).
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, bound). Precondition: bound > 0.
  mpz_class below(const mpz_class& bound);

  // Uniform `bits`-bit integer (top bit not forced).
  mpz_class bits(unsigned bits);

  // Uniform unit in Z_n^* (retries until gcd == 1).
  mpz_class unit_mod(const mpz_class& n);

  // Random prime of exactly `bits` bits.
  mpz_class prime(unsigned bits);

  // Random safe prime p = 2q + 1 of exactly `bits` bits (q prime).
  mpz_class safe_prime(unsigned bits);

  std::uint64_t u64();
  // Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t u64_below(std::uint64_t bound);
  double uniform01();

private:
  gmp_randclass state_;
};

}  // namespace yoso
