// Self-contained SHA-256 (FIPS 180-4).  Used by the Fiat-Shamir transcript
// and the counter-mode PRG; tested against the FIPS test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace yoso {

class Sha256 {
public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  Sha256& update(const void* data, std::size_t len);
  Sha256& update(const std::vector<std::uint8_t>& v) { return update(v.data(), v.size()); }
  Sha256& update(const std::string& s) { return update(s.data(), s.size()); }

  // Finalizes and returns the digest.  The object must not be reused after.
  Digest finalize();

  static Digest hash(const void* data, std::size_t len);
  static std::string hex(const Digest& d);

private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace yoso
