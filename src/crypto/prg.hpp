// Deterministic pseudo-random generator: SHA-256 in counter mode.
//
// Used wherever the protocol needs randomness that must be re-derivable
// from a seed (e.g. Fiat-Shamir simulators, reproducible workloads).
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"

namespace yoso {

class Prg {
public:
  explicit Prg(const std::vector<std::uint8_t>& seed);
  explicit Prg(std::uint64_t seed);

  // Fills `out` with the next `len` pseudo-random bytes.
  void bytes(std::uint8_t* out, std::size_t len);

  std::uint64_t u64();

  // Uniform in [0, bound) by rejection sampling. Precondition: bound > 0.
  mpz_class below(const mpz_class& bound);

private:
  void refill();

  Sha256::Digest seed_hash_;
  std::uint64_t counter_ = 0;
  Sha256::Digest block_{};
  std::size_t block_pos_ = Sha256::kDigestSize;  // force refill on first use
};

}  // namespace yoso
