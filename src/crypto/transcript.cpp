#include "crypto/transcript.hpp"

#include <cstring>
#include <stdexcept>

namespace yoso {

std::vector<std::uint8_t> mpz_to_bytes(const mpz_class& z) {
  std::vector<std::uint8_t> out;
  out.push_back(sgn(z) < 0 ? 1 : 0);
  if (z == 0) return out;
  std::size_t count = 0;
  mpz_class mag = abs(z);
  const std::size_t nbytes = (mpz_sizeinbase(mag.get_mpz_t(), 2) + 7) / 8;
  out.resize(1 + nbytes);
  mpz_export(out.data() + 1, &count, 1, 1, 0, 0, mag.get_mpz_t());
  out.resize(1 + count);
  return out;
}

mpz_class mpz_from_bytes(const std::vector<std::uint8_t>& b) {
  if (b.empty()) throw std::invalid_argument("mpz_from_bytes: empty");
  mpz_class v;
  if (b.size() > 1) {
    mpz_import(v.get_mpz_t(), b.size() - 1, 1, 1, 0, 0, b.data() + 1);
  }
  if (b[0]) v = -v;
  return v;
}

std::size_t mpz_wire_size(const mpz_class& z) {
  if (z == 0) return 1;
  return 1 + (mpz_sizeinbase(z.get_mpz_t(), 2) + 7) / 8;
}

Transcript::Transcript(const std::string& domain_label) {
  Sha256 h;
  h.update("yoso.transcript.v1");
  h.update(domain_label);
  state_ = h.finalize();
}

void Transcript::absorb(const std::string& label, const void* data, std::size_t len) {
  Sha256 h;
  h.update(state_.data(), state_.size());
  h.update(label);
  std::uint8_t lenbuf[8];
  for (int i = 0; i < 8; ++i) lenbuf[i] = static_cast<std::uint8_t>(len >> (8 * i));
  h.update(lenbuf, 8);
  h.update(data, len);
  state_ = h.finalize();
}

void Transcript::absorb(const std::string& label, const std::string& s) {
  absorb(label, s.data(), s.size());
}

void Transcript::absorb(const std::string& label, const mpz_class& z) {
  auto bytes = mpz_to_bytes(z);
  absorb(label, bytes.data(), bytes.size());
}

void Transcript::absorb_u64(const std::string& label, std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  absorb(label, buf, 8);
}

void Transcript::ratchet(const std::string& label) {
  Sha256 h;
  h.update(state_.data(), state_.size());
  h.update("ratchet");
  h.update(label);
  state_ = h.finalize();
}

mpz_class Transcript::challenge_bits(const std::string& label, unsigned bits) {
  ratchet(label);
  // Expand the state in counter mode until we have enough bits.
  mpz_class acc = 0;
  unsigned got = 0;
  std::uint64_t ctr = 0;
  while (got < bits) {
    Sha256 h;
    h.update(state_.data(), state_.size());
    h.update("expand");
    std::uint8_t cbuf[8];
    for (int i = 0; i < 8; ++i) cbuf[i] = static_cast<std::uint8_t>(ctr >> (8 * i));
    h.update(cbuf, 8);
    auto d = h.finalize();
    mpz_class block;
    mpz_import(block.get_mpz_t(), d.size(), 1, 1, 0, 0, d.data());
    acc = (acc << 256) + block;
    got += 256;
    ++ctr;
  }
  mpz_class mask = (mpz_class(1) << bits) - 1;
  return acc & mask;
}

mpz_class Transcript::challenge_below(const std::string& label, const mpz_class& bound) {
  if (bound <= 0) throw std::invalid_argument("Transcript::challenge_below: bad bound");
  const unsigned bits = static_cast<unsigned>(mpz_sizeinbase(bound.get_mpz_t(), 2));
  // Oversample by 64 bits so the mod bias is negligible.
  mpz_class wide = challenge_bits(label, bits + 64);
  return wide % bound;
}

}  // namespace yoso
