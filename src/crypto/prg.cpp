#include "crypto/prg.hpp"

#include <cstring>
#include <stdexcept>

namespace yoso {

Prg::Prg(const std::vector<std::uint8_t>& seed) {
  Sha256 h;
  h.update("yoso.prg.seed");
  h.update(seed);
  seed_hash_ = h.finalize();
}

Prg::Prg(std::uint64_t seed) {
  Sha256 h;
  h.update("yoso.prg.seed.u64");
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  h.update(buf, 8);
  seed_hash_ = h.finalize();
}

void Prg::refill() {
  Sha256 h;
  h.update(seed_hash_.data(), seed_hash_.size());
  std::uint8_t ctr[8];
  for (int i = 0; i < 8; ++i) ctr[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
  h.update(ctr, 8);
  block_ = h.finalize();
  ++counter_;
  block_pos_ = 0;
}

void Prg::bytes(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (block_pos_ == block_.size()) refill();
    std::size_t take = std::min(len, block_.size() - block_pos_);
    std::memcpy(out, block_.data() + block_pos_, take);
    block_pos_ += take;
    out += take;
    len -= take;
  }
}

std::uint64_t Prg::u64() {
  std::uint8_t buf[8];
  bytes(buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

mpz_class Prg::below(const mpz_class& bound) {
  if (bound <= 0) throw std::invalid_argument("Prg::below: bound must be positive");
  const std::size_t bits = mpz_sizeinbase(bound.get_mpz_t(), 2);
  const std::size_t nbytes = (bits + 7) / 8;
  std::vector<std::uint8_t> buf(nbytes);
  for (;;) {
    bytes(buf.data(), buf.size());
    mpz_class v;
    mpz_import(v.get_mpz_t(), buf.size(), 1, 1, 0, 0, buf.data());
    // Mask down to `bits` bits to keep the rejection rate below 1/2.
    mpz_class masked = v >> static_cast<unsigned long>(8 * nbytes - bits);
    if (masked < bound) return masked;
  }
}

}  // namespace yoso
