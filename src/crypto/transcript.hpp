// Fiat-Shamir transcript: a running hash absorbing labelled protocol data,
// from which non-interactive challenges are squeezed.
//
// Every sigma-protocol NIZK in src/nizk derives its challenge from a
// Transcript seeded with a domain-separation label, the statement, and the
// prover's first message, making proofs non-interactive in the ROM.
#pragma once

#include <gmpxx.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace yoso {

class Transcript {
public:
  explicit Transcript(const std::string& domain_label);

  // Absorbs a labelled byte string.
  void absorb(const std::string& label, const void* data, std::size_t len);
  void absorb(const std::string& label, const std::string& s);
  // Absorbs a labelled big integer (sign + magnitude, length-prefixed).
  void absorb(const std::string& label, const mpz_class& z);
  void absorb_u64(const std::string& label, std::uint64_t v);

  // Squeezes a challenge in [0, 2^bits).  Advances the transcript state so
  // successive challenges are independent.
  mpz_class challenge_bits(const std::string& label, unsigned bits);

  // Squeezes a challenge in [0, bound).
  mpz_class challenge_below(const std::string& label, const mpz_class& bound);

private:
  void ratchet(const std::string& label);

  Sha256::Digest state_{};
};

// Serializes an mpz to a canonical byte string (sign byte + magnitude).
std::vector<std::uint8_t> mpz_to_bytes(const mpz_class& z);
mpz_class mpz_from_bytes(const std::vector<std::uint8_t>& b);

// Byte size of the canonical serialization; used by the communication
// ledger to price messages.
std::size_t mpz_wire_size(const mpz_class& z);

}  // namespace yoso
