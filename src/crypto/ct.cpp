#include "crypto/ct.hpp"

#include "crypto/transcript.hpp"

namespace yoso {

bool ct_equal(const void* a, const void* b, std::size_t n) {
  const auto* pa = static_cast<const std::uint8_t*>(a);
  const auto* pb = static_cast<const std::uint8_t*>(b);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) diff |= static_cast<std::uint8_t>(pa[i] ^ pb[i]);
  return diff == 0;
}

bool ct_equal(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) return false;
  return ct_equal(a.data(), b.data(), a.size());
}

bool ct_equal(const Sha256::Digest& a, const Sha256::Digest& b) {
  return ct_equal(a.data(), b.data(), a.size());
}

bool ct_equal(const mpz_class& a, const mpz_class& b) {
  return ct_equal(mpz_to_bytes(a), mpz_to_bytes(b));
}

}  // namespace yoso
