file(REMOVE_RECURSE
  "CMakeFiles/costmodel_test.dir/costmodel_test.cpp.o"
  "CMakeFiles/costmodel_test.dir/costmodel_test.cpp.o.d"
  "costmodel_test"
  "costmodel_test.pdb"
  "costmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
