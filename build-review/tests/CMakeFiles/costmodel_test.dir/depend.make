# Empty dependencies file for costmodel_test.
# This may be replaced when dependencies are built.
