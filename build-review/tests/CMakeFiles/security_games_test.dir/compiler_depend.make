# Empty compiler generated dependencies file for security_games_test.
# This may be replaced when dependencies are built.
