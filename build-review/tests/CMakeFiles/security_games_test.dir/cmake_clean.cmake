file(REMOVE_RECURSE
  "CMakeFiles/security_games_test.dir/security_games_test.cpp.o"
  "CMakeFiles/security_games_test.dir/security_games_test.cpp.o.d"
  "security_games_test"
  "security_games_test.pdb"
  "security_games_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_games_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
