# Empty compiler generated dependencies file for lint_test.
# This may be replaced when dependencies are built.
