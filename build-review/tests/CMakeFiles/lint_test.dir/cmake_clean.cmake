file(REMOVE_RECURSE
  "CMakeFiles/lint_test.dir/lint_test.cpp.o"
  "CMakeFiles/lint_test.dir/lint_test.cpp.o.d"
  "lint_test"
  "lint_test.pdb"
  "lint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
