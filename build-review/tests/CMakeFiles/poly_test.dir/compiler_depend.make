# Empty compiler generated dependencies file for poly_test.
# This may be replaced when dependencies are built.
