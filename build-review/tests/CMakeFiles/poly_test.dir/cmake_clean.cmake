file(REMOVE_RECURSE
  "CMakeFiles/poly_test.dir/poly_test.cpp.o"
  "CMakeFiles/poly_test.dir/poly_test.cpp.o.d"
  "poly_test"
  "poly_test.pdb"
  "poly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
