# Empty compiler generated dependencies file for yoso_runtime_test.
# This may be replaced when dependencies are built.
