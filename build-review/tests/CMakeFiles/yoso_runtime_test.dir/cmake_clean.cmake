file(REMOVE_RECURSE
  "CMakeFiles/yoso_runtime_test.dir/yoso_runtime_test.cpp.o"
  "CMakeFiles/yoso_runtime_test.dir/yoso_runtime_test.cpp.o.d"
  "yoso_runtime_test"
  "yoso_runtime_test.pdb"
  "yoso_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
