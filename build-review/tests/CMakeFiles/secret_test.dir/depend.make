# Empty dependencies file for secret_test.
# This may be replaced when dependencies are built.
