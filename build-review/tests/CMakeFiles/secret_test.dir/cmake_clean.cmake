file(REMOVE_RECURSE
  "CMakeFiles/secret_test.dir/secret_test.cpp.o"
  "CMakeFiles/secret_test.dir/secret_test.cpp.o.d"
  "secret_test"
  "secret_test.pdb"
  "secret_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
