# Empty dependencies file for chaos_test.
# This may be replaced when dependencies are built.
