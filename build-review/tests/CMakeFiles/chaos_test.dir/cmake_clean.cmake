file(REMOVE_RECURSE
  "CMakeFiles/chaos_test.dir/chaos_test.cpp.o"
  "CMakeFiles/chaos_test.dir/chaos_test.cpp.o.d"
  "chaos_test"
  "chaos_test.pdb"
  "chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
