# Empty dependencies file for crypto_test.
# This may be replaced when dependencies are built.
