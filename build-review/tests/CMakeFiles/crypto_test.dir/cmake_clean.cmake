file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/crypto_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_test.cpp.o.d"
  "crypto_test"
  "crypto_test.pdb"
  "crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
