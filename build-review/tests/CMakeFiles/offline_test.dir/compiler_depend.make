# Empty compiler generated dependencies file for offline_test.
# This may be replaced when dependencies are built.
