file(REMOVE_RECURSE
  "CMakeFiles/offline_test.dir/offline_test.cpp.o"
  "CMakeFiles/offline_test.dir/offline_test.cpp.o.d"
  "offline_test"
  "offline_test.pdb"
  "offline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
