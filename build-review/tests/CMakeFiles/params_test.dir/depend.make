# Empty dependencies file for params_test.
# This may be replaced when dependencies are built.
