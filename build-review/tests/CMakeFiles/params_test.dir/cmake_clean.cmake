file(REMOVE_RECURSE
  "CMakeFiles/params_test.dir/params_test.cpp.o"
  "CMakeFiles/params_test.dir/params_test.cpp.o.d"
  "params_test"
  "params_test.pdb"
  "params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
