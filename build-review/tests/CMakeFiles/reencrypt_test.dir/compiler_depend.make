# Empty compiler generated dependencies file for reencrypt_test.
# This may be replaced when dependencies are built.
