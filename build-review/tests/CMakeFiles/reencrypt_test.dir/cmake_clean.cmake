file(REMOVE_RECURSE
  "CMakeFiles/reencrypt_test.dir/reencrypt_test.cpp.o"
  "CMakeFiles/reencrypt_test.dir/reencrypt_test.cpp.o.d"
  "reencrypt_test"
  "reencrypt_test.pdb"
  "reencrypt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reencrypt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
