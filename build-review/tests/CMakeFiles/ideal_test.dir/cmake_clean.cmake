file(REMOVE_RECURSE
  "CMakeFiles/ideal_test.dir/ideal_test.cpp.o"
  "CMakeFiles/ideal_test.dir/ideal_test.cpp.o.d"
  "ideal_test"
  "ideal_test.pdb"
  "ideal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ideal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
