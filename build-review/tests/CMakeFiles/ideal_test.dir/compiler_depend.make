# Empty compiler generated dependencies file for ideal_test.
# This may be replaced when dependencies are built.
