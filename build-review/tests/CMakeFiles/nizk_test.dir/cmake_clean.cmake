file(REMOVE_RECURSE
  "CMakeFiles/nizk_test.dir/nizk_test.cpp.o"
  "CMakeFiles/nizk_test.dir/nizk_test.cpp.o.d"
  "nizk_test"
  "nizk_test.pdb"
  "nizk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nizk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
