# Empty dependencies file for nizk_test.
# This may be replaced when dependencies are built.
