file(REMOVE_RECURSE
  "CMakeFiles/codec_test.dir/codec_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec_test.cpp.o.d"
  "codec_test"
  "codec_test.pdb"
  "codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
