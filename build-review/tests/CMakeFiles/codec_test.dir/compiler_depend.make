# Empty compiler generated dependencies file for codec_test.
# This may be replaced when dependencies are built.
