file(REMOVE_RECURSE
  "CMakeFiles/root_proof_test.dir/root_proof_test.cpp.o"
  "CMakeFiles/root_proof_test.dir/root_proof_test.cpp.o.d"
  "root_proof_test"
  "root_proof_test.pdb"
  "root_proof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
