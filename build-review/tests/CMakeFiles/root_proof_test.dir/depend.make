# Empty dependencies file for root_proof_test.
# This may be replaced when dependencies are built.
