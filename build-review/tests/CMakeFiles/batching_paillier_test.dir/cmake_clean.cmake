file(REMOVE_RECURSE
  "CMakeFiles/batching_paillier_test.dir/batching_paillier_test.cpp.o"
  "CMakeFiles/batching_paillier_test.dir/batching_paillier_test.cpp.o.d"
  "batching_paillier_test"
  "batching_paillier_test.pdb"
  "batching_paillier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_paillier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
