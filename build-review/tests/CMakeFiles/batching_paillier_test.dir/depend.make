# Empty dependencies file for batching_paillier_test.
# This may be replaced when dependencies are built.
