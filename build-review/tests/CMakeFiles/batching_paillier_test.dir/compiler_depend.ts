# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for batching_paillier_test.
