file(REMOVE_RECURSE
  "CMakeFiles/sweep_test.dir/sweep_test.cpp.o"
  "CMakeFiles/sweep_test.dir/sweep_test.cpp.o.d"
  "sweep_test"
  "sweep_test.pdb"
  "sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
