# Empty dependencies file for sortition_test.
# This may be replaced when dependencies are built.
