file(REMOVE_RECURSE
  "CMakeFiles/sortition_test.dir/sortition_test.cpp.o"
  "CMakeFiles/sortition_test.dir/sortition_test.cpp.o.d"
  "sortition_test"
  "sortition_test.pdb"
  "sortition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sortition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
