file(REMOVE_RECURSE
  "CMakeFiles/baseline_test.dir/baseline_test.cpp.o"
  "CMakeFiles/baseline_test.dir/baseline_test.cpp.o.d"
  "baseline_test"
  "baseline_test.pdb"
  "baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
