# Empty compiler generated dependencies file for baseline_test.
# This may be replaced when dependencies are built.
