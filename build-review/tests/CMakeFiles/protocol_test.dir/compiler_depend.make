# Empty compiler generated dependencies file for protocol_test.
# This may be replaced when dependencies are built.
