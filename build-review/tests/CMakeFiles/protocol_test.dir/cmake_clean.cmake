file(REMOVE_RECURSE
  "CMakeFiles/protocol_test.dir/protocol_test.cpp.o"
  "CMakeFiles/protocol_test.dir/protocol_test.cpp.o.d"
  "protocol_test"
  "protocol_test.pdb"
  "protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
