file(REMOVE_RECURSE
  "CMakeFiles/ct_test.dir/ct_test.cpp.o"
  "CMakeFiles/ct_test.dir/ct_test.cpp.o.d"
  "ct_test"
  "ct_test.pdb"
  "ct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
