# Empty compiler generated dependencies file for ct_test.
# This may be replaced when dependencies are built.
