file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net_test.cpp.o"
  "CMakeFiles/net_test.dir/net_test.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
