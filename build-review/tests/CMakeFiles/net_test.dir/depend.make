# Empty dependencies file for net_test.
# This may be replaced when dependencies are built.
