# Empty compiler generated dependencies file for threshold_test.
# This may be replaced when dependencies are built.
