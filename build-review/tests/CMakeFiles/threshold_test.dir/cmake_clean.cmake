file(REMOVE_RECURSE
  "CMakeFiles/threshold_test.dir/threshold_test.cpp.o"
  "CMakeFiles/threshold_test.dir/threshold_test.cpp.o.d"
  "threshold_test"
  "threshold_test.pdb"
  "threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
