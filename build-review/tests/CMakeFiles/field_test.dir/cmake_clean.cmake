file(REMOVE_RECURSE
  "CMakeFiles/field_test.dir/field_test.cpp.o"
  "CMakeFiles/field_test.dir/field_test.cpp.o.d"
  "field_test"
  "field_test.pdb"
  "field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
