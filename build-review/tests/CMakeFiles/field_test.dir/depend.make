# Empty dependencies file for field_test.
# This may be replaced when dependencies are built.
