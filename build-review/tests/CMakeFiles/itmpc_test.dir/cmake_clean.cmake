file(REMOVE_RECURSE
  "CMakeFiles/itmpc_test.dir/itmpc_test.cpp.o"
  "CMakeFiles/itmpc_test.dir/itmpc_test.cpp.o.d"
  "itmpc_test"
  "itmpc_test.pdb"
  "itmpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itmpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
