# Empty dependencies file for itmpc_test.
# This may be replaced when dependencies are built.
