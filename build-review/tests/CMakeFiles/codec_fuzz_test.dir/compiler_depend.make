# Empty compiler generated dependencies file for codec_fuzz_test.
# This may be replaced when dependencies are built.
