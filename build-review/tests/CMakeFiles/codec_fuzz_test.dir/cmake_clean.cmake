file(REMOVE_RECURSE
  "CMakeFiles/codec_fuzz_test.dir/codec_fuzz_test.cpp.o"
  "CMakeFiles/codec_fuzz_test.dir/codec_fuzz_test.cpp.o.d"
  "codec_fuzz_test"
  "codec_fuzz_test.pdb"
  "codec_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
