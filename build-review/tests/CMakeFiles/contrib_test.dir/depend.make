# Empty dependencies file for contrib_test.
# This may be replaced when dependencies are built.
