file(REMOVE_RECURSE
  "CMakeFiles/contrib_test.dir/contrib_test.cpp.o"
  "CMakeFiles/contrib_test.dir/contrib_test.cpp.o.d"
  "contrib_test"
  "contrib_test.pdb"
  "contrib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contrib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
