file(REMOVE_RECURSE
  "CMakeFiles/paillier_test.dir/paillier_test.cpp.o"
  "CMakeFiles/paillier_test.dir/paillier_test.cpp.o.d"
  "paillier_test"
  "paillier_test.pdb"
  "paillier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paillier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
