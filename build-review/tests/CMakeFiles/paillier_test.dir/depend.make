# Empty dependencies file for paillier_test.
# This may be replaced when dependencies are built.
