# Empty compiler generated dependencies file for circuit_test.
# This may be replaced when dependencies are built.
