file(REMOVE_RECURSE
  "CMakeFiles/circuit_test.dir/circuit_test.cpp.o"
  "CMakeFiles/circuit_test.dir/circuit_test.cpp.o.d"
  "circuit_test"
  "circuit_test.pdb"
  "circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
