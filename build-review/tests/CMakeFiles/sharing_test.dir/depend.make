# Empty dependencies file for sharing_test.
# This may be replaced when dependencies are built.
