file(REMOVE_RECURSE
  "CMakeFiles/sharing_test.dir/sharing_test.cpp.o"
  "CMakeFiles/sharing_test.dir/sharing_test.cpp.o.d"
  "sharing_test"
  "sharing_test.pdb"
  "sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
