# Empty dependencies file for yosompc.
# This may be replaced when dependencies are built.
