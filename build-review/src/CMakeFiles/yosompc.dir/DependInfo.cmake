
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cdn.cpp" "src/CMakeFiles/yosompc.dir/baseline/cdn.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/baseline/cdn.cpp.o.d"
  "/root/repo/src/chaos/campaign.cpp" "src/CMakeFiles/yosompc.dir/chaos/campaign.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/chaos/campaign.cpp.o.d"
  "/root/repo/src/chaos/minimize.cpp" "src/CMakeFiles/yosompc.dir/chaos/minimize.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/chaos/minimize.cpp.o.d"
  "/root/repo/src/chaos/schedule.cpp" "src/CMakeFiles/yosompc.dir/chaos/schedule.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/chaos/schedule.cpp.o.d"
  "/root/repo/src/circuit/batching.cpp" "src/CMakeFiles/yosompc.dir/circuit/batching.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/circuit/batching.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/yosompc.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/workloads.cpp" "src/CMakeFiles/yosompc.dir/circuit/workloads.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/circuit/workloads.cpp.o.d"
  "/root/repo/src/common/ct_math.cpp" "src/CMakeFiles/yosompc.dir/common/ct_math.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/common/ct_math.cpp.o.d"
  "/root/repo/src/crypto/ct.cpp" "src/CMakeFiles/yosompc.dir/crypto/ct.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/crypto/ct.cpp.o.d"
  "/root/repo/src/crypto/prg.cpp" "src/CMakeFiles/yosompc.dir/crypto/prg.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/crypto/prg.cpp.o.d"
  "/root/repo/src/crypto/rand.cpp" "src/CMakeFiles/yosompc.dir/crypto/rand.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/crypto/rand.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/yosompc.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/transcript.cpp" "src/CMakeFiles/yosompc.dir/crypto/transcript.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/crypto/transcript.cpp.o.d"
  "/root/repo/src/field/fp61.cpp" "src/CMakeFiles/yosompc.dir/field/fp61.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/field/fp61.cpp.o.d"
  "/root/repo/src/field/poly.cpp" "src/CMakeFiles/yosompc.dir/field/poly.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/field/poly.cpp.o.d"
  "/root/repo/src/field/zn_ring.cpp" "src/CMakeFiles/yosompc.dir/field/zn_ring.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/field/zn_ring.cpp.o.d"
  "/root/repo/src/itmpc/itmpc.cpp" "src/CMakeFiles/yosompc.dir/itmpc/itmpc.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/itmpc/itmpc.cpp.o.d"
  "/root/repo/src/mpc/contrib.cpp" "src/CMakeFiles/yosompc.dir/mpc/contrib.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/contrib.cpp.o.d"
  "/root/repo/src/mpc/failure.cpp" "src/CMakeFiles/yosompc.dir/mpc/failure.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/failure.cpp.o.d"
  "/root/repo/src/mpc/ideal.cpp" "src/CMakeFiles/yosompc.dir/mpc/ideal.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/ideal.cpp.o.d"
  "/root/repo/src/mpc/offline.cpp" "src/CMakeFiles/yosompc.dir/mpc/offline.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/offline.cpp.o.d"
  "/root/repo/src/mpc/online.cpp" "src/CMakeFiles/yosompc.dir/mpc/online.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/online.cpp.o.d"
  "/root/repo/src/mpc/params.cpp" "src/CMakeFiles/yosompc.dir/mpc/params.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/params.cpp.o.d"
  "/root/repo/src/mpc/protocol.cpp" "src/CMakeFiles/yosompc.dir/mpc/protocol.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/protocol.cpp.o.d"
  "/root/repo/src/mpc/reencrypt.cpp" "src/CMakeFiles/yosompc.dir/mpc/reencrypt.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/reencrypt.cpp.o.d"
  "/root/repo/src/mpc/setup.cpp" "src/CMakeFiles/yosompc.dir/mpc/setup.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/mpc/setup.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "src/CMakeFiles/yosompc.dir/net/event_loop.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/net/event_loop.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/yosompc.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/net/link.cpp.o.d"
  "/root/repo/src/net/net_bulletin.cpp" "src/CMakeFiles/yosompc.dir/net/net_bulletin.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/net/net_bulletin.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/yosompc.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/net/transport.cpp.o.d"
  "/root/repo/src/net/wire_faults.cpp" "src/CMakeFiles/yosompc.dir/net/wire_faults.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/net/wire_faults.cpp.o.d"
  "/root/repo/src/nizk/link_proof.cpp" "src/CMakeFiles/yosompc.dir/nizk/link_proof.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/nizk/link_proof.cpp.o.d"
  "/root/repo/src/nizk/mult_proof.cpp" "src/CMakeFiles/yosompc.dir/nizk/mult_proof.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/nizk/mult_proof.cpp.o.d"
  "/root/repo/src/nizk/pdec_proof.cpp" "src/CMakeFiles/yosompc.dir/nizk/pdec_proof.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/nizk/pdec_proof.cpp.o.d"
  "/root/repo/src/nizk/plaintext_proof.cpp" "src/CMakeFiles/yosompc.dir/nizk/plaintext_proof.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/nizk/plaintext_proof.cpp.o.d"
  "/root/repo/src/nizk/root_proof.cpp" "src/CMakeFiles/yosompc.dir/nizk/root_proof.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/nizk/root_proof.cpp.o.d"
  "/root/repo/src/paillier/batching.cpp" "src/CMakeFiles/yosompc.dir/paillier/batching.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/paillier/batching.cpp.o.d"
  "/root/repo/src/paillier/paillier.cpp" "src/CMakeFiles/yosompc.dir/paillier/paillier.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/paillier/paillier.cpp.o.d"
  "/root/repo/src/paillier/threshold.cpp" "src/CMakeFiles/yosompc.dir/paillier/threshold.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/paillier/threshold.cpp.o.d"
  "/root/repo/src/sortition/analysis.cpp" "src/CMakeFiles/yosompc.dir/sortition/analysis.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/sortition/analysis.cpp.o.d"
  "/root/repo/src/sortition/costmodel.cpp" "src/CMakeFiles/yosompc.dir/sortition/costmodel.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/sortition/costmodel.cpp.o.d"
  "/root/repo/src/sortition/montecarlo.cpp" "src/CMakeFiles/yosompc.dir/sortition/montecarlo.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/sortition/montecarlo.cpp.o.d"
  "/root/repo/src/sortition/table1.cpp" "src/CMakeFiles/yosompc.dir/sortition/table1.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/sortition/table1.cpp.o.d"
  "/root/repo/src/wire/codec.cpp" "src/CMakeFiles/yosompc.dir/wire/codec.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/wire/codec.cpp.o.d"
  "/root/repo/src/yoso/adversary.cpp" "src/CMakeFiles/yosompc.dir/yoso/adversary.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/yoso/adversary.cpp.o.d"
  "/root/repo/src/yoso/bulletin.cpp" "src/CMakeFiles/yosompc.dir/yoso/bulletin.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/yoso/bulletin.cpp.o.d"
  "/root/repo/src/yoso/ledger.cpp" "src/CMakeFiles/yosompc.dir/yoso/ledger.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/yoso/ledger.cpp.o.d"
  "/root/repo/src/yoso/role_assign.cpp" "src/CMakeFiles/yosompc.dir/yoso/role_assign.cpp.o" "gcc" "src/CMakeFiles/yosompc.dir/yoso/role_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
