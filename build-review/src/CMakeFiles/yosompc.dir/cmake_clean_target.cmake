file(REMOVE_RECURSE
  "libyosompc.a"
)
