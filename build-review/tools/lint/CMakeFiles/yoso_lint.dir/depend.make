# Empty dependencies file for yoso_lint.
# This may be replaced when dependencies are built.
