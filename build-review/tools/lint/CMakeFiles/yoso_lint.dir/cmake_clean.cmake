file(REMOVE_RECURSE
  "CMakeFiles/yoso_lint.dir/lint_main.cpp.o"
  "CMakeFiles/yoso_lint.dir/lint_main.cpp.o.d"
  "yoso_lint"
  "yoso_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yoso_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
