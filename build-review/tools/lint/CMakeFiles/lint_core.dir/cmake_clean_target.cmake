file(REMOVE_RECURSE
  "liblint_core.a"
)
