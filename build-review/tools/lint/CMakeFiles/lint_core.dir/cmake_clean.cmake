file(REMOVE_RECURSE
  "CMakeFiles/lint_core.dir/lint_core.cpp.o"
  "CMakeFiles/lint_core.dir/lint_core.cpp.o.d"
  "liblint_core.a"
  "liblint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
