# Empty dependencies file for lint_core.
# This may be replaced when dependencies are built.
