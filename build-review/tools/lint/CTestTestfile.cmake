# CMake generated Testfile for 
# Source directory: /root/repo/tools/lint
# Build directory: /root/repo/build-review/tools/lint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[repo_lint]=] "/root/repo/build-review/tools/lint/yoso_lint" "--root" "/root/repo" "--whitelist" "/root/repo/tools/lint/whitelist.txt")
set_tests_properties([=[repo_lint]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/lint/CMakeLists.txt;10;add_test;/root/repo/tools/lint/CMakeLists.txt;0;")
