# Empty compiler generated dependencies file for chaos.
# This may be replaced when dependencies are built.
