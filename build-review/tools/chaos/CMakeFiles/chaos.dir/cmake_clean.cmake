file(REMOVE_RECURSE
  "CMakeFiles/chaos.dir/chaos_main.cpp.o"
  "CMakeFiles/chaos.dir/chaos_main.cpp.o.d"
  "chaos"
  "chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
