# CMake generated Testfile for 
# Source directory: /root/repo/tools/chaos
# Build directory: /root/repo/build-review/tools/chaos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
