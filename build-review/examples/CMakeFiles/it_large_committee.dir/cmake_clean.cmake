file(REMOVE_RECURSE
  "CMakeFiles/it_large_committee.dir/it_large_committee.cpp.o"
  "CMakeFiles/it_large_committee.dir/it_large_committee.cpp.o.d"
  "it_large_committee"
  "it_large_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/it_large_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
