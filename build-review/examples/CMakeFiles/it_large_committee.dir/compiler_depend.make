# Empty compiler generated dependencies file for it_large_committee.
# This may be replaced when dependencies are built.
