file(REMOVE_RECURSE
  "CMakeFiles/federated_stats.dir/federated_stats.cpp.o"
  "CMakeFiles/federated_stats.dir/federated_stats.cpp.o.d"
  "federated_stats"
  "federated_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
