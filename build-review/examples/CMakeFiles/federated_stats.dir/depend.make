# Empty dependencies file for federated_stats.
# This may be replaced when dependencies are built.
