file(REMOVE_RECURSE
  "CMakeFiles/committee_planner.dir/committee_planner.cpp.o"
  "CMakeFiles/committee_planner.dir/committee_planner.cpp.o.d"
  "committee_planner"
  "committee_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
