# Empty dependencies file for committee_planner.
# This may be replaced when dependencies are built.
