file(REMOVE_RECURSE
  "CMakeFiles/private_auction.dir/private_auction.cpp.o"
  "CMakeFiles/private_auction.dir/private_auction.cpp.o.d"
  "private_auction"
  "private_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
