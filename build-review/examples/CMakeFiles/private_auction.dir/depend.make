# Empty dependencies file for private_auction.
# This may be replaced when dependencies are built.
