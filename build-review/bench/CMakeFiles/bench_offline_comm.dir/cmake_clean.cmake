file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_comm.dir/bench_offline_comm.cpp.o"
  "CMakeFiles/bench_offline_comm.dir/bench_offline_comm.cpp.o.d"
  "bench_offline_comm"
  "bench_offline_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
