# Empty compiler generated dependencies file for bench_offline_comm.
# This may be replaced when dependencies are built.
