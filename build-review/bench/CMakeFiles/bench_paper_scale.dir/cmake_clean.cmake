file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_scale.dir/bench_paper_scale.cpp.o"
  "CMakeFiles/bench_paper_scale.dir/bench_paper_scale.cpp.o.d"
  "bench_paper_scale"
  "bench_paper_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
