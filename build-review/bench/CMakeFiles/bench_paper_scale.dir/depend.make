# Empty dependencies file for bench_paper_scale.
# This may be replaced when dependencies are built.
