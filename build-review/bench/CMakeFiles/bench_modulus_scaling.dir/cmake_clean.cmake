file(REMOVE_RECURSE
  "CMakeFiles/bench_modulus_scaling.dir/bench_modulus_scaling.cpp.o"
  "CMakeFiles/bench_modulus_scaling.dir/bench_modulus_scaling.cpp.o.d"
  "bench_modulus_scaling"
  "bench_modulus_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modulus_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
