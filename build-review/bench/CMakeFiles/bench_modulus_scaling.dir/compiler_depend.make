# Empty compiler generated dependencies file for bench_modulus_scaling.
# This may be replaced when dependencies are built.
