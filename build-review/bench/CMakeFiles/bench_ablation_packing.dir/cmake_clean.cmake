file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cpp.o"
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cpp.o.d"
  "bench_ablation_packing"
  "bench_ablation_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
