# Empty dependencies file for bench_ablation_packing.
# This may be replaced when dependencies are built.
