# Empty dependencies file for bench_net_latency.
# This may be replaced when dependencies are built.
