file(REMOVE_RECURSE
  "CMakeFiles/bench_net_latency.dir/bench_net_latency.cpp.o"
  "CMakeFiles/bench_net_latency.dir/bench_net_latency.cpp.o.d"
  "bench_net_latency"
  "bench_net_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
