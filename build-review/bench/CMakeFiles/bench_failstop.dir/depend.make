# Empty dependencies file for bench_failstop.
# This may be replaced when dependencies are built.
