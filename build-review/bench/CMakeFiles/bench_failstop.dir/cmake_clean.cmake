file(REMOVE_RECURSE
  "CMakeFiles/bench_failstop.dir/bench_failstop.cpp.o"
  "CMakeFiles/bench_failstop.dir/bench_failstop.cpp.o.d"
  "bench_failstop"
  "bench_failstop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failstop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
