file(REMOVE_RECURSE
  "CMakeFiles/bench_chaos.dir/bench_chaos.cpp.o"
  "CMakeFiles/bench_chaos.dir/bench_chaos.cpp.o.d"
  "bench_chaos"
  "bench_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
