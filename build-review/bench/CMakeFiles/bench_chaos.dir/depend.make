# Empty dependencies file for bench_chaos.
# This may be replaced when dependencies are built.
