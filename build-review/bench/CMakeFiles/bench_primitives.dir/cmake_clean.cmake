file(REMOVE_RECURSE
  "CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o"
  "CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o.d"
  "bench_primitives"
  "bench_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
