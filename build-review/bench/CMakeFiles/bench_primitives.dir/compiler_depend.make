# Empty compiler generated dependencies file for bench_primitives.
# This may be replaced when dependencies are built.
