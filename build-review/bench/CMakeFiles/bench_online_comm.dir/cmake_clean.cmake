file(REMOVE_RECURSE
  "CMakeFiles/bench_online_comm.dir/bench_online_comm.cpp.o"
  "CMakeFiles/bench_online_comm.dir/bench_online_comm.cpp.o.d"
  "bench_online_comm"
  "bench_online_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
