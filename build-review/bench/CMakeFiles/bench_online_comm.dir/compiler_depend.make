# Empty compiler generated dependencies file for bench_online_comm.
# This may be replaced when dependencies are built.
