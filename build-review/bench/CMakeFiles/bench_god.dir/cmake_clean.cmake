file(REMOVE_RECURSE
  "CMakeFiles/bench_god.dir/bench_god.cpp.o"
  "CMakeFiles/bench_god.dir/bench_god.cpp.o.d"
  "bench_god"
  "bench_god.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_god.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
