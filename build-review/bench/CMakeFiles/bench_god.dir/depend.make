# Empty dependencies file for bench_god.
# This may be replaced when dependencies are built.
