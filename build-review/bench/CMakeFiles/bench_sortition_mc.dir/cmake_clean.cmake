file(REMOVE_RECURSE
  "CMakeFiles/bench_sortition_mc.dir/bench_sortition_mc.cpp.o"
  "CMakeFiles/bench_sortition_mc.dir/bench_sortition_mc.cpp.o.d"
  "bench_sortition_mc"
  "bench_sortition_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sortition_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
