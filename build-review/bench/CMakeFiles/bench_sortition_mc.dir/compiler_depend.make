# Empty compiler generated dependencies file for bench_sortition_mc.
# This may be replaced when dependencies are built.
