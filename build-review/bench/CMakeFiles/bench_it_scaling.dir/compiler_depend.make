# Empty compiler generated dependencies file for bench_it_scaling.
# This may be replaced when dependencies are built.
