file(REMOVE_RECURSE
  "CMakeFiles/bench_it_scaling.dir/bench_it_scaling.cpp.o"
  "CMakeFiles/bench_it_scaling.dir/bench_it_scaling.cpp.o.d"
  "bench_it_scaling"
  "bench_it_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_it_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
