// Paper-scale end-to-end projection: the evaluation "figure" a full paper
// would plot.  The analytic cost model is validated element-exact against
// the measured ledger (costmodel_test.cpp), so projecting it to the
// Table 1 committee sizes is pure arithmetic on verified per-message
// counts.  For every feasible Table 1 cell this prints the full-execution
// broadcast volume (offline + online, in ring elements) of the packed
// protocol at committee size c vs. the CDN baseline at committee size c'
// — i.e. each protocol at *its own* required committee — on a wide
// circuit of 10 * c' multiplication gates.
#include <cmath>
#include <cstdio>

#include "sortition/costmodel.hpp"
#include "sortition/table1.hpp"

using namespace yoso;

int main() {
  std::printf("=== Paper-scale projection: full-execution broadcast volume ===\n");
  std::printf("(model validated element-exact vs. measured ledger at laptop scale)\n\n");
  std::printf("%7s %5s | %7s %7s %6s | %13s %13s %8s | %13s %13s\n", "C", "f", "n=c",
              "n'=c'", "k", "online/gate", "CDN onl/gate", "speedup", "our total",
              "CDN total");

  for (const auto& row : generate_table1()) {
    if (!row.analysis.feasible) continue;
    auto p = params_from_analysis(row.analysis, 2048);
    // Baseline runs at its own (smaller) committee c' with k = 1.
    ProtocolParams pb = p;
    pb.n = static_cast<unsigned>(std::llround(row.analysis.c_prime));
    pb.k = 1;

    const std::size_t gates = 10 * pb.n;
    auto shape_ours = CircuitShape::wide(gates);
    auto ours = packed_cost(p, shape_ours);
    auto cdn = cdn_cost(pb, shape_ours);

    std::printf("%7.0f %5.2f | %7u %7u %6u | %13.1f %13.1f %7.0fx | %13.3e %13.3e\n", row.C,
                row.f, p.n, pb.n, p.k, ours.online_per_gate, cdn.online_per_gate,
                cdn.online_per_gate / ours.online_per_gate,
                ours.offline + ours.online, cdn.offline + cdn.online);
  }

  std::printf("\nReading: the online-per-gate column is ~n/k = 1/eps for ours and 2n for\n"
              "CDN; the speedup column lands at ~2k, bracketing the paper's 'factor k'\n"
              "claim (constants differ: CDN posts two partial-decryption rounds per\n"
              "gate, ours one mu-share per packed slot).  Totals include the offline\n"
              "phase, where both protocols are Theta(n) per gate.\n");
  return 0;
}
