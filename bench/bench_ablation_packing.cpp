// Ablation: the packing factor k is *the* knob the gap buys (DESIGN.md
// ablation list).  Fix the committee (n = 12, eps = 0.25, t = 2) and sweep
// k from 1 (no packing — the prior-work configuration) to the maximum the
// gap allows, measuring the real protocol's online mult traffic and the
// fail-stop budget that remains.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  const unsigned n = 12;
  const double eps = 0.25;
  auto base = ProtocolParams::for_gap(n, eps, 128);
  Circuit c = wide_mul_circuit(2 * n);
  const double gates = static_cast<double>(c.num_mul_gates());

  std::printf("=== Ablation: packing factor k at fixed n = %u, eps = %.2f, t = %u ===\n", n,
              eps, base.t);
  std::printf("wide circuit, %0.f mul gates; online mult elements per gate measured\n\n",
              gates);
  std::printf("%3s | %6s | %16s | %18s | %16s\n", "k", "recon", "mult elems/gate",
              "offline elems/gate", "failstop budget");

  for (unsigned k = 1; k <= base.k; ++k) {
    ProtocolParams p = base;
    p.k = k;
    p.validate();
    YosoMpc mpc(p, c, AdversaryPlan::honest(n), 9700 + k);
    mpc.run(make_inputs(c, k));
    double mult = static_cast<double>(
                      mpc.ledger().categories(Phase::Online).at("online.mult").elements) /
                  gates;
    double off = static_cast<double>(mpc.ledger().phase_total(Phase::Offline).elements) /
                 gates;
    std::printf("%3u | %6u | %16.2f | %18.1f | %16u\n", k, p.recon_threshold(), mult, off,
                n - p.t - p.recon_threshold());
  }

  std::printf("\nOnline mult traffic falls as 1/k (n/k shares per gate) while the offline\n"
              "cost stays O(n) per gate — the paper's central trade: each unit of gap\n"
              "spent on packing divides online communication without touching offline\n"
              "asymptotics.  The remaining fail-stop budget shrinks as k grows\n"
              "(Section 5.4's trade-off).\n");
  return 0;
}
