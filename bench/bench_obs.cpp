// E11: observability overhead — the tracing & metrics layer must be close
// to free when muted and cheap when recording.
//
// Runs the identical full protocol (YosoMpc over NetBulletin, no faults)
// twice per repetition in the same binary: once with obs::set_enabled(false)
// (every span/counter call is one untaken branch) and once with recording
// on.  The wall-clock delta lands in BENCH_comm.json under "obs_overhead";
// the acceptance bar for the compile-time OBS_DISABLED configuration is
// checked separately by building with -DYOSO_OBS_DISABLED=ON.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_json.hpp"
#include "chaos/schedule.hpp"
#include "common/json.hpp"
#include "crypto/rand.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"
#include "net/wire_faults.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> inputs_for(const Circuit& c, std::uint64_t seed) {
  Rng rng(net::mix64(seed ^ 0x10901575ULL));
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1u << 16))));
    }
  }
  return inputs;
}

double run_once_ms(const chaos::FaultSchedule& schedule,
                   const std::vector<std::vector<mpz_class>>& inputs) {
  Ledger ledger;
  net::NetBulletin board(ledger, schedule.net_config());
  const auto t0 = std::chrono::steady_clock::now();
  YosoMpc mpc(schedule.params(), schedule.circuit(), schedule.adversary(), schedule.seed, &board);
  (void)mpc.run(inputs);
  board.flush();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  chaos::FaultSchedule schedule;  // defaults: n = 6, width 2, no faults
  const Circuit circuit = schedule.circuit();
  const auto inputs = inputs_for(circuit, schedule.seed);

  std::printf("=== E11: obs overhead, n=%u width=%u, %zu reps ===\n", schedule.n,
              schedule.circuit_width, reps);

  double off_ms = 0, on_ms = 0;
  std::size_t spans = 0;
#ifndef OBS_DISABLED
  for (std::size_t r = 0; r < reps; ++r) {
    obs::set_enabled(false);
    off_ms += run_once_ms(schedule, inputs);
    obs::set_enabled(true);
    obs::tracer().reset();
    obs::metrics().reset();
    on_ms += run_once_ms(schedule, inputs);
    spans = obs::tracer().spans().size();
  }
  obs::set_enabled(true);
#else
  for (std::size_t r = 0; r < reps; ++r) {
    off_ms += run_once_ms(schedule, inputs);
    on_ms += run_once_ms(schedule, inputs);
  }
#endif
  off_ms /= static_cast<double>(reps);
  on_ms /= static_cast<double>(reps);
  const double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;

  std::printf("muted   %.3f ms/run\n", off_ms);
  std::printf("enabled %.3f ms/run  (%zu spans recorded)\n", on_ms, spans);
  std::printf("overhead %.2f%%\n", overhead_pct);

  json::Writer w;
  w.begin_object();
  w.field("reps", static_cast<std::uint64_t>(reps));
  w.field("n", schedule.n).field("width", schedule.circuit_width);
  w.field("disabled_ms", off_ms).field("enabled_ms", on_ms);
  w.field("overhead_pct", overhead_pct);
  w.field("spans", static_cast<std::uint64_t>(spans));
#ifdef OBS_DISABLED
  w.field("compiled_out", true);
#else
  w.field("compiled_out", false);
#endif
  w.end_object();
  bench::merge_bench_json("BENCH_comm.json", "obs_overhead", w.take());
  return 0;
}
