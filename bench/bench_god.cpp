// E6: guaranteed output delivery under active corruption (Theorem 1).
//
// Runs the protocol with t malicious roles per committee under each
// misbehaviour strategy and verifies the outputs still match the cleartext
// evaluation, reporting the broadcast overhead the adversary inflicts.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  auto params = ProtocolParams::for_gap(8, 0.2, 128);
  Circuit c = inner_product_circuit(4);
  std::printf("=== E6: guaranteed output delivery, %s ===\n", params.describe().c_str());
  std::printf("circuit: inner product of length 4 (%zu mul gates, depth %u)\n\n",
              c.num_mul_gates(), c.mul_depth());

  struct Case {
    const char* name;
    MaliciousStrategy strategy;
  };
  const Case cases[] = {
      {"honest baseline", MaliciousStrategy::HonestLooking},
      {"bad shares", MaliciousStrategy::BadShare},
      {"bad proofs", MaliciousStrategy::BadProof},
      {"silent (crash)", MaliciousStrategy::Silent},
  };

  std::printf("%-18s %9s %14s %14s\n", "adversary", "outputs", "online bytes", "total bytes");
  std::size_t honest_total = 0;
  for (const auto& cs : cases) {
    auto inputs = make_inputs(c, 9500);
    YosoMpc mpc(params, c, AdversaryPlan::fixed(params.n, params.t, 0, cs.strategy), 9501);
    auto res = mpc.run(inputs);
    bool correct = res.outputs == c.eval(inputs, mpc.plaintext_modulus());
    std::size_t online = mpc.ledger().phase_total(Phase::Online).bytes;
    std::size_t total = mpc.ledger().total().bytes;
    if (honest_total == 0) honest_total = total;
    std::printf("%-18s %9s %14zu %14zu\n", cs.name, correct ? "correct" : "WRONG", online,
                total);
  }
  std::printf("\nAll adversarial runs deliver correct outputs with t = %u corruptions per\n"
              "committee: bad contributions are excluded by the NIZK checks and any t+1\n"
              "honest partials / t+2(k-1)+1 honest mu-shares reconstruct (GOD).\n",
              params.t);
  return 0;
}
