// E1 + E2: regenerates Table 1 of the paper (sortition parameters with a
// gap) and the headline online-communication speedups of Section 1.1.2,
// and diffs each cell against the published values.
#include <cmath>
#include <cstdio>

#include "sortition/table1.hpp"

using namespace yoso;

int main() {
  std::printf("=== E1: Table 1 — sample sortition parameters (reproduced) ===\n");
  std::printf("C = sortition parameter, f = global corruption ratio,\n");
  std::printf("t = corruption bound, c = committee size with gap, c' = 2t (eps = 0),\n");
  std::printf("eps = gap, k = packing factor (= online speedup vs [BGG+20]/[GHK+21]).\n\n");

  auto rows = generate_table1();
  std::printf("%s\n", render_table1(rows).c_str());

  std::printf("=== Reproduction diff vs. paper (feasible cells) ===\n");
  std::printf("%7s %6s | %9s %9s | %9s %9s | %7s %7s | %6s %6s\n", "C", "f", "t(paper)",
              "t(ours)", "c(paper)", "c(ours)", "k(paper)", "k(ours)", "eps(p)", "eps(o)");
  unsigned exact_k = 0;
  for (const auto& p : paper_table1()) {
    const Table1Row* mine = nullptr;
    for (const auto& r : rows) {
      if (r.C == p.C && std::abs(r.f - p.f) < 1e-9) mine = &r;
    }
    if (mine == nullptr || !mine->analysis.feasible) {
      std::printf("%7.0f %6.2f | MISSING\n", p.C, p.f);
      continue;
    }
    if (mine->analysis.k == p.k) ++exact_k;
    std::printf("%7.0f %6.2f | %9u %9.0f | %9u %9.0f | %7u %7u | %6.2f %6.2f\n", p.C, p.f,
                p.t, std::round(mine->analysis.t), p.c, std::round(mine->analysis.c), p.k,
                mine->analysis.k, p.eps, mine->analysis.eps);
  }
  std::printf("\npacking factors k reproduced exactly: %u / %zu cells\n", exact_k,
              paper_table1().size());

  std::printf("\n=== E2: headline online speedups (Section 1.1.2) ===\n");
  {
    auto a = analyze_gap(SortitionConfig{1000, 0.05});
    std::printf("C=1000,  f=0.05: committees %4.0f -> %4.0f, online improvement %ux "
                "(paper: ~28x, 900 -> 1000)\n",
                a.c_prime, a.c, a.k);
    auto b = analyze_gap(SortitionConfig{20000, 0.20});
    std::printf("C=20000, f=0.20: committees %5.0f -> %5.0f, online improvement %ux "
                "(paper: >1000x, ~18k -> ~20k)\n",
                b.c_prime, b.c, b.k);
  }
  return 0;
}
