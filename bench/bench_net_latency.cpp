// E9: end-to-end virtual latency over simulated links (src/net).
//
// Runs the real protocol and the CDN baseline on a NetBulletin — every
// bulletin post becomes actual framed traffic through the discrete-event
// transport — and reports per-phase virtual wall-clock seconds on the LAN
// and WAN presets.  The paper's online claim (O(1) elements per gate vs.
// the baseline's Theta(n) partial decryptions) turns into wall-clock once
// bandwidth matters: on a 50 Mbit/s WAN the baseline's per-gate byte volume
// dominates its one-round head start, so ours wins the online phase for
// n >= 8.  A final row demonstrates fail-stop fault injection: with packing
// halved (failstop_mode) the protocol still completes with floor(n*eps)
// silent parties per committee.
#include <cstdio>
#include <sstream>
#include <vector>

#include "baseline/cdn.hpp"
#include "bench_json.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "net/net_bulletin.hpp"

using namespace yoso;
using namespace yoso::net;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

struct Timing {
  double setup = 0, offline = 0, online = 0, total = 0;
  std::size_t rounds = 0, online_rounds = 0;
};

template <class Proto>
Timing run_on(const ProtocolParams& params, unsigned n, const Circuit& c, std::uint64_t seed,
              const NetConfig& cfg) {
  Ledger ledger;
  NetBulletin board(ledger, cfg);
  Proto mpc(params, c, AdversaryPlan::honest(n), seed, &board);
  mpc.run(make_inputs(c, seed));
  board.flush();
  Timing t;
  t.setup = board.phase_traffic(Phase::Setup).seconds;
  t.offline = board.phase_traffic(Phase::Offline).seconds;
  t.online = board.phase_traffic(Phase::Online).seconds;
  t.rounds = board.phase_traffic(Phase::Setup).rounds + board.phase_traffic(Phase::Offline).rounds +
             board.phase_traffic(Phase::Online).rounds;
  t.online_rounds = board.phase_traffic(Phase::Online).rounds;
  t.total = board.elapsed();
  return t;
}

}  // namespace

int main() {
  std::printf("=== E9: virtual wall-clock latency on simulated links ===\n");
  std::printf("grid circuit (width 12n, depth 4), |N| = 128, star-via-board topology\n\n");

  std::ostringstream json;
  json << "{";
  bool json_first = true;

  for (const LinkModel& link : {LinkModel::lan(), LinkModel::wan()}) {
    std::printf("[%s]  %s\n", link.name.c_str(), link.describe().c_str());
    std::printf("%4s | %28s | %28s | %8s\n", "n", "ours setup/offline/online (s)",
                "CDN  setup/offline/online (s)", "online x");
    for (unsigned n : {4u, 8u, 16u}) {
      auto params = ProtocolParams::for_gap(n, 0.25, 128);
      Circuit c = grid_mul_circuit(12 * n, 4);
      NetConfig cfg;
      cfg.link = link;
      Timing ours = run_on<YosoMpc>(params, n, c, 9300 + n, cfg);
      Timing cdn = run_on<CdnBaseline>(params, n, c, 9400 + n, cfg);
      std::printf("%4u | %8.3f %9.3f %9.3f (%2zu rds) | %8.3f %9.3f %9.3f (%2zu rds) | %7.2fx\n",
                  n, ours.setup, ours.offline, ours.online, ours.online_rounds, cdn.setup,
                  cdn.offline, cdn.online, cdn.online_rounds, cdn.online / ours.online);
      if (!json_first) json << ",";
      json_first = false;
      json << "\"" << link.name << "_n" << n << "\":{\"ours\":{\"setup_s\":" << ours.setup
           << ",\"offline_s\":" << ours.offline << ",\"online_s\":" << ours.online
           << ",\"total_s\":" << ours.total << "},\"cdn\":{\"setup_s\":" << cdn.setup
           << ",\"offline_s\":" << cdn.offline << ",\"online_s\":" << cdn.online
           << ",\"total_s\":" << cdn.total << "}}";
    }
    std::printf("\n");
  }

  // Blockchain bulletin board: 12 s confirmation latency per round, so round
  // count — not byte volume — dominates and the one extra online round of the
  // re-encryption hop shows up.  Reported for honesty about the trade-off.
  {
    const LinkModel link = LinkModel::blockchain_bb();
    std::printf("[%s]  %s\n", link.name.c_str(), link.describe().c_str());
    unsigned n = 8;
    auto params = ProtocolParams::for_gap(n, 0.25, 128);
    Circuit c = grid_mul_circuit(12 * n, 4);
    NetConfig cfg;
    cfg.link = link;
    Timing ours = run_on<YosoMpc>(params, n, c, 9308, cfg);
    Timing cdn = run_on<CdnBaseline>(params, n, c, 9408, cfg);
    std::printf("%4u | ours online %8.1f s (%zu rounds total) | CDN online %8.1f s "
                "(%zu rounds total)\n\n",
                n, ours.online, ours.rounds, cdn.online, cdn.rounds);
    json << ",\"bb_n8\":{\"ours_online_s\":" << ours.online << ",\"cdn_online_s\":" << cdn.online
         << "}";
  }

  // Fault injection: floor(n*eps) honest roles per committee go silent.
  // With packing halved (failstop_mode) the recon threshold still leaves
  // enough speakers, so the run completes — at roughly the byte cost of the
  // full-packing run on a circuit of half the width (Section 5.4).
  {
    unsigned n = 8;
    double eps = 0.25;
    auto params = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/true);
    Circuit c = grid_mul_circuit(2 * n, 4);
    NetConfig cfg;
    cfg.link = LinkModel::wan();
    cfg.faults.silence_per_committee = static_cast<unsigned>(n * eps);
    Ledger ledger;
    NetBulletin board(ledger, cfg);
    YosoMpc mpc(params, c, AdversaryPlan::honest(n), 9508, &board);
    mpc.run(make_inputs(c, 9508));
    board.flush();
    std::printf("[fault injection, wan]  n = %u, packing halved, %u honest roles/committee "
                "silenced\n", n, cfg.faults.silence_per_committee);
    std::printf("  completed: online %.3f s, total %.3f s, %u roles silenced in all\n\n",
                board.phase_traffic(Phase::Online).seconds, board.elapsed(),
                board.roles_silenced());
    json << ",\"failstop_wan_n8\":{\"silenced\":" << board.roles_silenced()
         << ",\"online_s\":" << board.phase_traffic(Phase::Online).seconds
         << ",\"total_s\":" << board.elapsed() << "}";
  }

  json << "}";
  yoso::bench::merge_bench_json("BENCH_comm.json", "net_latency", json.str());
  return 0;
}
