// E5: fail-stop tolerance (Section 5.4).
//
// At n = 8, eps = 0.25 the paper's trade-off is: full packing k - 1 = n*eps
// maximizes online savings but tolerates no silent honest parties; halving
// the packing to k - 1 = n*eps/2 tolerates up to n*eps of them.  This bench
// sweeps the number of fail-stop roles per committee under both packings
// (with t active corruptions also present) and reports completion.
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

const char* attempt(const ProtocolParams& params, unsigned failstops, std::uint64_t seed) {
  Circuit c = wide_mul_circuit(4);
  auto inputs = make_inputs(c, seed);
  try {
    YosoMpc mpc(params, c,
                AdversaryPlan::fixed(params.n, params.t, failstops,
                                     MaliciousStrategy::BadShare),
                seed);
    auto res = mpc.run(inputs);
    auto expected = c.eval(inputs, mpc.plaintext_modulus());
    return (res.outputs == expected) ? "ok" : "WRONG";
  } catch (const ProtocolAbort&) {
    return "stall";
  } catch (const std::invalid_argument&) {
    return "n/a";
  }
}

}  // namespace

int main() {
  const unsigned n = 8;
  const double eps = 0.25;
  auto full = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/false);
  auto half = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/true);

  std::printf("=== E5: fail-stop tolerance at n = %u, eps = %.2f, t = %u active ===\n", n,
              eps, full.t);
  std::printf("full packing k = %u (k-1 = n*eps):    tolerates %u fail-stops by design\n",
              full.k, n - full.t - full.recon_threshold());
  std::printf("half packing k = %u (k-1 = n*eps/2):  tolerates %u fail-stops by design\n\n",
              half.k, n - half.t - half.recon_threshold());

  std::printf("%12s", "fail-stops:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8u", f);
  std::printf("\n%12s", "full k:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8s", attempt(full, f, 9300 + f));
  std::printf("\n%12s", "half k:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8s", attempt(half, f, 9400 + f));
  std::printf("\n\n'ok' = completed with correct outputs, 'stall' = fewer than\n"
              "t+2(k-1)+1 verified shares survived (no output delivery).\n");
  std::printf("Paper's claim: halving k buys tolerance of ~n*eps = %u fail-stops while\n"
              "full packing stalls — the crossover above reproduces it.\n",
              static_cast<unsigned>(n * eps));
  return 0;
}
