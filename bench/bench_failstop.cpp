// E5: fail-stop tolerance (Section 5.4).
//
// At n = 8, eps = 0.25 the paper's trade-off is: full packing k - 1 = n*eps
// maximizes online savings but tolerates no silent honest parties; halving
// the packing to k - 1 = n*eps/2 tolerates up to n*eps of them.  This bench
// sweeps the number of fail-stop roles per committee under both packings
// (with t active corruptions also present) and reports completion.
//
// The second table sweeps the gap eps with the degradation driver on and
// off: a strict run that aborts on silence is re-run with the Section 5.4
// parameterization, and the recovery's true communication cost (retry
// traffic plus the sunk strict attempt) lands in BENCH_comm.json under
// "failstop_degradation".
#include <cstdio>
#include <sstream>

#include "bench_json.hpp"
#include "chaos/campaign.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

const char* attempt(const ProtocolParams& params, unsigned failstops, std::uint64_t seed) {
  Circuit c = wide_mul_circuit(4);
  auto inputs = make_inputs(c, seed);
  try {
    YosoMpc mpc(params, c,
                AdversaryPlan::fixed(params.n, params.t, failstops,
                                     MaliciousStrategy::BadShare),
                seed);
    auto res = mpc.run(inputs);
    auto expected = c.eval(inputs, mpc.plaintext_modulus());
    return (res.outputs == expected) ? "ok" : "WRONG";
  } catch (const ProtocolAbort&) {
    return "stall";
  } catch (const std::invalid_argument&) {
    return "n/a";
  }
}

}  // namespace

int main() {
  const unsigned n = 8;
  const double eps = 0.25;
  auto full = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/false);
  auto half = ProtocolParams::for_gap(n, eps, 128, /*failstop_mode=*/true);

  std::printf("=== E5: fail-stop tolerance at n = %u, eps = %.2f, t = %u active ===\n", n,
              eps, full.t);
  std::printf("full packing k = %u (k-1 = n*eps):    tolerates %u fail-stops by design\n",
              full.k, n - full.t - full.recon_threshold());
  std::printf("half packing k = %u (k-1 = n*eps/2):  tolerates %u fail-stops by design\n\n",
              half.k, n - half.t - half.recon_threshold());

  std::printf("%12s", "fail-stops:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8u", f);
  std::printf("\n%12s", "full k:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8s", attempt(full, f, 9300 + f));
  std::printf("\n%12s", "half k:");
  for (unsigned f = 0; f <= 4; ++f) std::printf("%8s", attempt(half, f, 9400 + f));
  std::printf("\n\n'ok' = completed with correct outputs, 'stall' = fewer than\n"
              "t+2(k-1)+1 verified shares survived (no output delivery).\n");
  std::printf("Paper's claim: halving k buys tolerance of ~n*eps = %u fail-stops while\n"
              "full packing stalls — the crossover above reproduces it.\n",
              static_cast<unsigned>(n * eps));

  // --- eps sweep with the degradation driver on/off -------------------------
  // Strict packing maximizes savings; when silence kills it, the driver
  // re-runs under Section 5.4 parameters.  The sweep shows where recovery
  // kicks in and what it costs relative to giving up.
  std::printf("\n=== eps sweep x degradation driver (n = %u, %u fail-stops) ===\n", n, 2u);
  std::printf("%8s%8s%12s%12s%16s%16s\n", "eps", "degr", "outcome", "recovered", "total_bytes",
              "sunk_bytes");
  std::ostringstream json;
  json << "{\"n\":" << n << ",\"failstops\":2,\"sweep\":[";
  bool first = true;
  for (double e : {0.125, 0.25}) {
    for (bool degrade : {false, true}) {
      chaos::FaultSchedule s;
      s.seed = 9500;
      s.n = n;
      s.eps = e;
      s.paillier_bits = 128;
      s.circuit_width = 4;
      s.malicious = ProtocolParams::for_gap(n, e, 128).t;
      s.failstop = 2;
      s.degradation = degrade;
      chaos::RunReport r = chaos::CampaignRunner::run_one(s);
      std::printf("%8.3f%8s%12s%12s%16zu%16zu\n", e, degrade ? "on" : "off",
                  chaos::outcome_name(r.outcome), r.recovered ? "yes" : "no", r.total_bytes,
                  r.strict_attempt_bytes);
      json << (first ? "" : ",") << "{\"eps\":" << e << ",\"degradation\":" << (degrade ? 1 : 0)
           << ",\"outcome\":\"" << chaos::outcome_name(r.outcome)
           << "\",\"recovered\":" << (r.recovered ? 1 : 0) << ",\"total_bytes\":" << r.total_bytes
           << ",\"strict_attempt_bytes\":" << r.strict_attempt_bytes << "}";
      first = false;
    }
  }
  json << "]}";
  bench::merge_bench_json("BENCH_comm.json", "failstop_degradation", json.str());
  return 0;
}
