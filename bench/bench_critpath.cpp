// E16: critical-path analysis and parallel-speedup forecast — the causality
// observatory (src/obs/dag, src/perf/critpath.hpp).
//
// Replays the audit-regime sweep, reconstructs the happens-before DAG from
// the board's publish stream, prices it with the fixed reference coefficient
// table, and commits work/span/parallelism plus the k-worker forecast curve
// to BENCH_comm.json under "critpath" (plus the run-metadata header under
// "meta").  Everything is counts-priced-by-constants, so the payload is
// bit-for-bit identical across re-runs and machines; this bench runs every
// point TWICE and refuses to write on any byte difference — the determinism
// gate CI leans on.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/json.hpp"
#include "perf/critpath.hpp"

#ifndef OBS_DISABLED
#include "obs/runtime.hpp"
#endif

#include "obs/report.hpp"

using namespace yoso;

namespace {

std::vector<unsigned> parse_sweep(const char* arg) {
  std::vector<unsigned> ns;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const unsigned n =
        static_cast<unsigned>(std::strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    if (n > 0) ns.push_back(n);
    pos = comma + 1;
  }
  return ns;
}

// One human line per point: work/span in model-ms plus the forecast knees.
void print_point(const perf::CritpathPoint& pt) {
  const json::Value crit = json::parse(pt.crit_json);
  const double work = crit.num_or("work", 0);
  const double span = crit.num_or("span", 0);
  std::printf("n=%-3u t=%-3u k=%-3u gates=%-5llu work=%10.1f ms span=%9.1f ms par=%5.2f",
              pt.n, pt.t, pt.k, static_cast<unsigned long long>(pt.gates), work / 1e3,
              span / 1e3, span > 0 ? work / span : 1.0);
  const json::Value* forecast = crit.find("forecast");
  if (forecast != nullptr && forecast->is_object()) {
    std::printf("  forecast:");
    for (const auto& [kkey, v] : forecast->members) {
      if (v.is_number()) std::printf(" %s=%.2fx", kkey.c_str(), v.number);
    }
  }
  std::printf("%s\n", pt.completed ? "" : "  (aborted run)");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> ns = argc > 1 ? parse_sweep(argv[1]) : std::vector<unsigned>{4, 6, 8};
  if (ns.empty()) {
    std::fprintf(stderr, "usage: %s [n1,n2,...]\n", argv[0]);
    return 2;
  }

#ifndef OBS_DISABLED
  obs::set_enabled(true);
#endif

  std::printf("=== E16: critical path + parallel-speedup forecast (audit regime) ===\n");
  std::vector<perf::CritpathPoint> points;
  for (unsigned n : ns) {
    perf::CritpathOptions opt;
    opt.n = n;
    perf::CritpathPoint pt = perf::run_critpath_point(opt);
    print_point(pt);

    // Determinism gate: a same-seed replay must reproduce the analysis
    // byte for byte (counts are unconditional, pricing is the reference
    // table) — if it does not, the DAG leaked nondeterminism and the
    // baseline would flap, so refuse to write.
    const perf::CritpathPoint again = perf::run_critpath_point(opt);
    if (again.crit_json != pt.crit_json || again.dag_json != pt.dag_json) {
      std::fprintf(stderr, "E16: n=%u is NOT deterministic across two runs; not writing\n", n);
      return 1;
    }
    points.push_back(std::move(pt));
  }
  std::printf("determinism: every point byte-identical across two same-seed runs\n");

  const std::string sweep = perf::critpath_sweep_json(points);
  bench::merge_bench_json("BENCH_comm.json", "critpath", sweep);
  bench::merge_bench_json("BENCH_comm.json", "meta", obs::run_metadata_json());
  std::printf("wrote critpath key (%zu points, %zu bytes) to BENCH_comm.json\n", points.size(),
              sweep.size());
#ifdef OBS_DISABLED
  std::printf("note: OBS_DISABLED build — the DAG is compiled out, payload is empty\n");
#endif
  return 0;
}
