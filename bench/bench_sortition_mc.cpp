// E7: Monte-Carlo validation of the sortition tail bounds (Section 6).
//
// The paper's parameters use k2 = k3 = 128-bit failure probabilities that
// cannot be observed empirically; this bench re-solves the analysis at
// small k2 = k3 and checks the observed failure rates of both guaranteed
// events against their 2^-k budgets across several (C, f) cells.
#include <cstdio>

#include "sortition/montecarlo.hpp"

using namespace yoso;

int main() {
  std::printf("=== E7: sortition tail bounds, empirical vs analytic ===\n");
  std::printf("pool N = 200000 machines, 2^15 sampled committees per cell,\n");
  std::printf("analysis re-solved at k1 = 0, k2 = k3 = 12 (budget 2^-12 = %.5f)\n\n",
              1.0 / 4096);
  std::printf("%7s %6s | %8s %8s | %10s %12s | %12s %12s\n", "C", "f", "t", "eps",
              "mean size", "mean corrupt", "P[phi>=t]", "P[h<dt]");

  for (double C : {1000.0, 5000.0, 10000.0}) {
    for (double f : {0.05, 0.10}) {
      SortitionConfig cfg;
      cfg.C = C;
      cfg.f = f;
      cfg.k1 = 0;
      cfg.k2 = 12;
      cfg.k3 = 12;
      auto g = analyze_gap(cfg);
      if (!g.feasible) {
        std::printf("%7.0f %6.2f | infeasible\n", C, f);
        continue;
      }
      auto mc = sortition_monte_carlo(cfg, g, /*pool=*/200000, /*trials=*/1ull << 15,
                                      /*seed=*/0xE7 + static_cast<int>(C) + static_cast<int>(100 * f));
      double corr = static_cast<double>(mc.corruption_bound_failures) / mc.trials;
      double hon = static_cast<double>(mc.honest_bound_failures) / mc.trials;
      std::printf("%7.0f %6.2f | %8.0f %8.3f | %10.1f %12.1f | %12.6f %12.6f\n", C, f, g.t,
                  g.eps, mc.mean_committee_size, mc.mean_corrupt, corr, hon);
    }
  }
  std::printf("\nBoth observed failure rates must stay below the 2^-12 budget; zeros are\n"
              "expected since the Chernoff bounds are conservative.\n");
  return 0;
}
