// E3: online communication per gate vs. committee size n (Section 5.3).
//
// Runs the real protocol and the CDN baseline on wide circuits of width n
// (the paper's amortization regime) and reports the measured *online*
// broadcast elements per multiplication gate.  The paper's claim: ours is
// O(1) per gate — flat in n — while the baseline pays Theta(n) partial
// decryptions per gate.  A third column shows the analytic cost of the
// "naive" variant the paper warns about (leaving packed shares under tpk,
// Section 3.4): n partials per packed share, i.e. O(n^2 / k) per gate.
//
// The sweep itself lives in perf/sweep.hpp (tools/perf records the same
// points); this bench keeps the human-readable table and shape check.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "circuit/batching.hpp"
#include "circuit/workloads.hpp"
#include "mpc/params.hpp"
#include "perf/sweep.hpp"
#include "sortition/analysis.hpp"

using namespace yoso;

int main() {
  std::printf("=== E3: online broadcast elements per multiplication gate ===\n");
  std::printf("wide circuit of width n (one batch row per committee), |N| = 128\n\n");
  std::printf("%4s %3s %3s | %14s | %14s | %14s | %10s\n", "n", "t", "k", "ours: mult/gate",
              "ours: total/gate", "CDN: total/gate", "naive/gate");

  std::vector<perf::OnlinePoint> points;
  for (unsigned n : {4u, 6u, 8u, 12u, 16u}) {
    perf::OnlinePoint pt = perf::run_online_point(n);
    const double gates = static_cast<double>(pt.gates);

    // Naive variant: every packed share (3 per role per batch) threshold-
    // decrypted under tpk online: 3 * n * n partials per batch of k gates.
    Circuit c = wide_mul_circuit(4 * n);
    double naive = 3.0 * n * n * batch_count(c, pt.k) / gates;

    std::printf("%4u %3u %3u | %14.1f | %14.1f | %14.1f | %10.1f\n", pt.n, pt.t, pt.k,
                pt.ours_mult_elems / gates, pt.ours_total_elems / gates,
                pt.cdn_total_elems / gates, naive);
    points.push_back(std::move(pt));
  }

  const perf::OnlinePoint& first = points.front();
  const perf::OnlinePoint& last = points.back();
  const double ours_first = first.ours_mult_elems / static_cast<double>(first.gates);
  const double ours_last = last.ours_mult_elems / static_cast<double>(last.gates);
  const double cdn_first = first.cdn_mult_elems / static_cast<double>(first.gates);
  const double cdn_last = last.cdn_mult_elems / static_cast<double>(last.gates);

  std::printf("\nShape check (n: %u -> %u, a %.1fx increase):\n", first.n, last.n,
              static_cast<double>(last.n) / first.n);
  std::printf("  ours  (mult/gate) grew %.2fx  — paper predicts ~flat (O(1))\n",
              ours_last / ours_first);
  std::printf("  CDN   (mult/gate)  grew %.2fx — paper predicts ~linear (O(n))\n",
              cdn_last / cdn_first);

  std::printf("\nPaper-scale projection (per-gate online, using measured per-element"
              " coefficients):\n");
  // Calibrate on the steady-state mult categories only: the baseline posts
  // cdn_slope elements per gate per member (2 partials, analytically), ours
  // posts e0 elements per mu-share with n/k shares per gate.
  double cdn_slope = cdn_last / last.n;
  double e0 = ours_last * last.k / last.n;
  for (double C : {1000.0, 20000.0}) {
    for (double f : {0.05, 0.20}) {
      auto g = analyze_gap(SortitionConfig{C, f});
      if (!g.feasible) continue;
      double baseline_at_cprime = cdn_slope * g.c_prime;
      double ours_at_c = e0 * g.c / g.k;  // n/k shares per gate
      std::printf("  C=%6.0f f=%.2f: baseline(c'=%5.0f) ~%8.0f elems/gate, ours(c=%5.0f) "
                  "~%5.1f -> projected speedup ~%6.0fx (paper k = %u)\n",
                  C, f, g.c_prime, baseline_at_cprime, g.c, ours_at_c,
                  baseline_at_cprime / ours_at_c, g.k);
    }
  }

  yoso::bench::merge_bench_json("BENCH_comm.json", "online_comm",
                                perf::online_comm_json(points));
  return 0;
}
