// E3: online communication per gate vs. committee size n (Section 5.3).
//
// Runs the real protocol and the CDN baseline on wide circuits of width n
// (the paper's amortization regime) and reports the measured *online*
// broadcast elements per multiplication gate.  The paper's claim: ours is
// O(1) per gate — flat in n — while the baseline pays Theta(n) partial
// decryptions per gate.  A third column shows the analytic cost of the
// "naive" variant the paper warns about (leaving packed shares under tpk,
// Section 3.4): n partials per packed share, i.e. O(n^2 / k) per gate.
#include <cstdio>
#include <sstream>
#include <vector>

#include "baseline/cdn.hpp"
#include "bench_json.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"
#include "sortition/analysis.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  std::printf("=== E3: online broadcast elements per multiplication gate ===\n");
  std::printf("wide circuit of width n (one batch row per committee), |N| = 128\n\n");
  std::printf("%4s %3s %3s | %14s | %14s | %14s | %10s\n", "n", "t", "k", "ours: mult/gate",
              "ours: total/gate", "CDN: total/gate", "naive/gate");

  double ours_first = 0, cdn_first = 0, cdn_last = 0, ours_last = 0;
  unsigned n_first = 0, n_last = 0;
  std::ostringstream json;
  json << "{";
  for (unsigned n : {4u, 6u, 8u, 12u, 16u}) {
    auto params = ProtocolParams::for_gap(n, 0.25, 128);
    Circuit c = wide_mul_circuit(4 * n);  // width Theta(n), the paper's regime
    const double gates = static_cast<double>(c.num_mul_gates());

    YosoMpc ours(params, c, AdversaryPlan::honest(n), 9000 + n);
    ours.run(make_inputs(c, n));
    double ours_mult =
        static_cast<double>(ours.ledger().categories(Phase::Online).at("online.mult").elements) /
        gates;
    double ours_total =
        static_cast<double>(ours.ledger().phase_total(Phase::Online).elements) / gates;

    CdnBaseline cdn(params, c, AdversaryPlan::honest(n), 9100 + n);
    cdn.run(make_inputs(c, n));
    double cdn_total =
        static_cast<double>(cdn.ledger().phase_total(Phase::Online).elements) / gates;
    double cdn_mult =
        static_cast<double>(cdn.ledger().categories(Phase::Online).at("cdn.mult.pdec").elements) /
        gates;

    // Naive variant: every packed share (3 per role per batch) threshold-
    // decrypted under tpk online: 3 * n * n partials per batch of k gates.
    double naive = 3.0 * n * n * batch_count(c, params.k) / gates;

    if (n_first != 0) json << ",";
    json << "\"n" << n << "\":{\"ours\":" << ours.ledger().report_json()
         << ",\"cdn\":" << cdn.ledger().report_json() << "}";

    std::printf("%4u %3u %3u | %14.1f | %14.1f | %14.1f | %10.1f\n", n, params.t, params.k,
                ours_mult, ours_total, cdn_total, naive);
    if (n_first == 0) {
      n_first = n;
      ours_first = ours_mult;
      cdn_first = cdn_mult;
    }
    n_last = n;
    ours_last = ours_mult;
    cdn_last = cdn_mult;
  }

  std::printf("\nShape check (n: %u -> %u, a %.1fx increase):\n", n_first, n_last,
              static_cast<double>(n_last) / n_first);
  std::printf("  ours  (mult/gate) grew %.2fx  — paper predicts ~flat (O(1))\n",
              ours_last / ours_first);
  std::printf("  CDN   (mult/gate)  grew %.2fx — paper predicts ~linear (O(n))\n",
              cdn_last / cdn_first);

  std::printf("\nPaper-scale projection (per-gate online, using measured per-element"
              " coefficients):\n");
  // Calibrate on the steady-state mult categories only: the baseline posts
  // cdn_slope elements per gate per member (2 partials, analytically), ours
  // posts e0 elements per mu-share with n/k shares per gate.
  double cdn_slope = cdn_last / n_last;
  auto last_params = ProtocolParams::for_gap(n_last, 0.25, 128);
  double e0 = ours_last * last_params.k / n_last;
  for (double C : {1000.0, 20000.0}) {
    for (double f : {0.05, 0.20}) {
      auto g = analyze_gap(SortitionConfig{C, f});
      if (!g.feasible) continue;
      double baseline_at_cprime = cdn_slope * g.c_prime;
      double ours_at_c = e0 * g.c / g.k;  // n/k shares per gate
      std::printf("  C=%6.0f f=%.2f: baseline(c'=%5.0f) ~%8.0f elems/gate, ours(c=%5.0f) "
                  "~%5.1f -> projected speedup ~%6.0fx (paper k = %u)\n",
                  C, f, g.c_prime, baseline_at_cprime, g.c, ours_at_c,
                  baseline_at_cprime / ours_at_c, g.k);
    }
  }

  json << "}";
  yoso::bench::merge_bench_json("BENCH_comm.json", "online_comm", json.str());
  return 0;
}
