// Extension bench: the gap in the *information-theoretic* setting (the
// paper's future-work item), at near-paper-scale committee sizes.
//
// With no public-key operations, the IT engine runs committees of
// hundreds to ~2000 roles, so the O(1)-per-gate online claim can be shown
// directly rather than by extrapolation: mult elements/gate = n/k stays
// ~1/eps as n grows, while the unpacked (k = 1) variant pays n.
#include <chrono>
#include <cstdio>

#include "circuit/workloads.hpp"
#include "itmpc/itmpc.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<Fp61::Elem>> it_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Fp61::Elem>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) inputs[g.client].push_back(rng.u64_below(1 << 20));
  }
  return inputs;
}

}  // namespace

int main() {
  std::printf("=== IT extension: online elements/gate at paper-scale committees ===\n");
  std::printf("semi-honest IT packed engine over F_{2^61-1}, eps = 0.25, width-n circuit\n\n");
  std::printf("%6s %6s %5s | %14s | %14s | %10s\n", "n", "t", "k", "packed elems/gate",
              "k=1 elems/gate", "online ms");

  for (unsigned n : {16u, 64u, 256u, 512u, 1024u}) {
    ItParams params = ItParams::for_gap(n, 0.25);
    Circuit c = wide_mul_circuit(n);
    Rng rng(42 + n);
    auto corr = it_deal(c, params, rng);
    auto inputs = it_inputs(c, n);
    auto start = std::chrono::steady_clock::now();
    auto res = it_online(c, params, corr, inputs, 0, 1);
    auto ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        start)
                  .count();
    ItParams flat = params;
    flat.k = 1;
    Rng rng2(43 + n);
    auto corr2 = it_deal(c, flat, rng2);
    auto res2 = it_online(c, flat, corr2, inputs, 0, 1);

    std::printf("%6u %6u %5u | %14.2f | %14.2f | %10.1f\n", n, params.t, params.k,
                static_cast<double>(res.mult_share_elements) / n,
                static_cast<double>(res2.mult_share_elements) / n, ms);
  }

  std::printf("\nThe packed column stays ~1/eps = 4 while the unpacked column equals n:\n"
              "the gap's packing benefit carries over to the IT setting unchanged, at\n"
              "committee sizes matching Table 1's c values (n ~ 1000).\n");
  return 0;
}
