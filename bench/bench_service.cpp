// E13: MPC-as-a-service under a secure-aggregation load.
//
// Drives an MpcService through a 100-session secure-aggregation campaign:
// ~2 million masked-input clients sharded through 4 gateways, one session
// per 20k-client batch, with the background triple pool preprocessing the
// batch circuit ahead of demand.  Measures service throughput
// (sessions/virtual-second), triple-pool hit rate at steady state, and the
// p50/p99 submission-to-finish latency, verifies every batch against the
// workload's cleartext oracles, and re-runs the whole campaign to assert
// the service report is bit-for-bit deterministic.
//
// Results land in BENCH_comm.json under "service_load".
//
// Usage: bench_service [sessions] [batch_clients]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_json.hpp"
#include "common/json.hpp"
#include "service/service.hpp"
#include "service/workloads.hpp"

using namespace yoso;
using service::AggregationConfig;
using service::AggregationWorkload;
using service::MpcService;
using service::ServiceConfig;
using service::SessionState;

namespace {

std::unique_ptr<MpcService> run_load(const AggregationWorkload& workload,
                                     std::uint64_t sessions) {
  ServiceConfig cfg;
  cfg.n = 4;
  cfg.eps = 0.25;
  cfg.paillier_bits = 96;
  cfg.seed = 2025;
  cfg.max_concurrent = 4;
  cfg.max_queue = 64;
  cfg.pool.lanes = 2;
  cfg.pool.capacity = 8;
  cfg.pool_circuit = workload.session_circuit();
  auto svc = std::make_unique<MpcService>(cfg);
  for (std::uint64_t b = 0; b < sessions; ++b) {
    auto batch = workload.batch(b);
    svc->submit_at(batch.submit_at, std::move(batch.request));
  }
  svc->run();
  return svc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t sessions = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;
  const std::uint64_t batch_clients = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;

  AggregationConfig acfg;
  acfg.clients_total = sessions * batch_clients;
  acfg.batch_clients = batch_clients;
  acfg.gateways = 4;
  acfg.interarrival_s = 0.01;
  AggregationWorkload workload(acfg);

  std::printf("=== E13: service load — %llu sessions x %llu masked clients (%llu total) ===\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(batch_clients),
              static_cast<unsigned long long>(acfg.clients_total));

  auto svc = run_load(workload, sessions);
  const auto stats = svc->stats();

  std::size_t verified = 0;
  for (std::uint64_t b = 0; b < sessions; ++b) {
    const auto& rec = svc->session(b + 1);
    if (rec.state != SessionState::Completed) {
      std::printf("FAIL: session %llu ended %s\n", static_cast<unsigned long long>(rec.id),
                  session_state_name(rec.state));
      continue;
    }
    if (workload.verify(workload.batch(b), rec)) ++verified;
  }

  std::printf("completed %zu / %llu  (verified %zu, rejected %zu, failed %zu)\n",
              stats.completed, static_cast<unsigned long long>(sessions), verified,
              stats.rejected, stats.failed);
  std::printf("throughput  %.1f sessions/s over %.3f virtual s\n", stats.sessions_per_sec,
              stats.duration_s);
  std::printf("latency     p50 %.4f s   p99 %.4f s\n", stats.latency_p50_s, stats.latency_p99_s);
  std::printf("triple pool hit rate %.3f  (hits %zu, misses %zu, produced %zu, peak depth %zu)\n",
              stats.pool.hit_rate(), stats.pool.hits, stats.pool.misses, stats.pool.produced,
              stats.pool.peak_depth);

  // Bit-for-bit determinism: the same submissions against a fresh service
  // must reproduce the entire report, stats and ledgers included.
  const auto svc2 = run_load(workload, sessions);
  const bool deterministic = svc->report_json() == svc2->report_json();
  std::printf("determinism %s\n", deterministic ? "bit-for-bit" : "MISMATCH");

  json::Writer w;
  w.begin_object();
  w.field("sessions", sessions);
  w.field("batch_clients", batch_clients);
  w.field("clients_total", acfg.clients_total);
  w.field("completed", static_cast<std::uint64_t>(stats.completed));
  w.field("verified", static_cast<std::uint64_t>(verified));
  w.field("sessions_per_sec", stats.sessions_per_sec);
  w.field("triple_pool_hit_rate", stats.pool.hit_rate());
  w.field("session_latency_p50_s", stats.latency_p50_s);
  w.field("session_latency_p99_s", stats.latency_p99_s);
  w.field("pool_produced", static_cast<std::uint64_t>(stats.pool.produced));
  w.field("pool_peak_depth", static_cast<std::uint64_t>(stats.pool.peak_depth));
  w.field("deterministic", deterministic ? 1 : 0);
  w.end_object();
  bench::merge_bench_json("BENCH_comm.json", "service_load", w.take());

  bool ok = deterministic && stats.completed == sessions && verified == sessions;
  // Steady-state pool efficiency only meaningful on a long enough run.
  if (sessions >= 50 && stats.pool.hit_rate() <= 0.9) {
    std::printf("FAIL: steady-state hit rate %.3f <= 0.9\n", stats.pool.hit_rate());
    ok = false;
  }
  return ok ? 0 : 1;
}
