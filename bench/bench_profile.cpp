// E15: per-primitive compute profile — the deterministic half of the
// compute observatory (src/perf/opcosts.hpp).
//
// Replays the audit-regime sweep under the op profiler and commits the
// per-primitive call counts (with per-phase attribution) to
// BENCH_comm.json under "profile".  Counts are a pure function of the
// seeded run, so the emitted JSON is bit-for-bit identical across
// re-runs and machines — making this key diffable in review, unlike the
// machine-dependent self-times that `tools/perf record` writes to the
// sibling "op_costs" key.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/json.hpp"
#include "perf/opcosts.hpp"

#ifndef OBS_DISABLED
#include "obs/runtime.hpp"
#endif

using namespace yoso;

namespace {

std::vector<unsigned> parse_sweep(const char* arg) {
  std::vector<unsigned> ns;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const unsigned n =
        static_cast<unsigned>(std::strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    if (n > 0) ns.push_back(n);
    pos = comma + 1;
  }
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> ns = argc > 1 ? parse_sweep(argv[1]) : std::vector<unsigned>{4, 6, 8};
  if (ns.empty()) {
    std::fprintf(stderr, "usage: %s [n1,n2,...]\n", argv[0]);
    return 2;
  }

#ifndef OBS_DISABLED
  // Counts record regardless of the mute switch, but enable recording so a
  // bench run doubles as a smoke test of the enabled path.
  obs::set_enabled(true);
#endif

  std::printf("=== E15: per-primitive op counts (audit regime) ===\n");
  std::vector<perf::ProfilePoint> points;
  for (unsigned n : ns) {
    perf::ProfilePoint pt = perf::run_profile_point(n);
    std::printf("n=%-3u t=%-3u k=%-3u gates=%llu\n", pt.n, pt.t, pt.k,
                static_cast<unsigned long long>(pt.gates));
    points.push_back(std::move(pt));
  }

  const std::string sweep = perf::profile_sweep_json(points);
  bench::merge_bench_json("BENCH_comm.json", "profile", sweep);
  std::printf("wrote profile key (%zu points, %zu bytes) to BENCH_comm.json\n", points.size(),
              sweep.size());
#ifdef OBS_DISABLED
  std::printf("note: OBS_DISABLED build — counts compiled out, payload is empty\n");
#endif
  return 0;
}
