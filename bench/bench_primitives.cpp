// E8: microbenchmarks of every cryptographic primitive in the stack
// (google-benchmark).  These calibrate the cost model used to extrapolate
// the communication benches to paper-scale committees, and back the
// ablation notes in DESIGN.md (Delta = n! resharing cost, proof sizes).
#include <benchmark/benchmark.h>

#include "crypto/rand.hpp"
#include "field/fp61.hpp"
#include "nizk/pdec_proof.hpp"
#include "nizk/plaintext_proof.hpp"
#include "paillier/threshold.hpp"
#include "sharing/packed.hpp"

using namespace yoso;

namespace {

struct Fixture {
  Rng rng{0xBEEF};
  PaillierSK sk;
  ThresholdKeys tk;
  Fixture()
      : sk(paillier_keygen(512, 1, rng, /*safe_primes=*/false)),
        tk(tkgen(256, 1, 8, 3, rng)) {}
};

Fixture& fx() {
  static Fixture f;
  return f;
}

void BM_Fp61Mul(benchmark::State& state) {
  Fp61::Elem a = 123456789, b = 987654321;
  for (auto _ : state) {
    a = Fp61::mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp61Mul);

void BM_Fp61Inv(benchmark::State& state) {
  Fp61::Elem a = 123456789;
  for (auto _ : state) {
    a = Fp61::inv(a) + 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp61Inv);

void BM_PackedShare(benchmark::State& state) {
  Fp61Ring ring;
  Rng rng(1);
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned k = n / 4, d = n / 2 + k - 1;
  std::vector<Fp61::Elem> secrets(k);
  for (auto& s : secrets) s = ring.random(rng);
  for (auto _ : state) {
    auto sh = packed_share(ring, secrets, d, n, rng);
    benchmark::DoNotOptimize(sh);
  }
}
BENCHMARK(BM_PackedShare)->Arg(8)->Arg(32)->Arg(128);

void BM_PackedReconstruct(benchmark::State& state) {
  Fp61Ring ring;
  Rng rng(2);
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned k = n / 4, d = n / 2 + k - 1;
  std::vector<Fp61::Elem> secrets(k);
  for (auto& s : secrets) s = ring.random(rng);
  auto sh = packed_share(ring, secrets, d, n, rng);
  for (auto _ : state) {
    auto rec = packed_reconstruct(ring, sh.points, sh.shares, d, k);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_PackedReconstruct)->Arg(8)->Arg(32)->Arg(128);

void BM_PaillierEnc(benchmark::State& state) {
  auto& f = fx();
  mpz_class m = f.rng.below(f.sk.pk.ns);
  for (auto _ : state) {
    auto c = f.sk.pk.enc(m, f.rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PaillierEnc);

void BM_PaillierDec(benchmark::State& state) {
  auto& f = fx();
  mpz_class c = f.sk.pk.enc(f.rng.below(f.sk.pk.ns), f.rng);
  for (auto _ : state) {
    auto m = f.sk.dec(c);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PaillierDec);

void BM_PaillierEval(benchmark::State& state) {
  auto& f = fx();
  std::vector<mpz_class> cts, coeffs;
  for (int i = 0; i < 8; ++i) {
    cts.push_back(f.sk.pk.enc(f.rng.below(f.sk.pk.ns), f.rng));
    coeffs.push_back(f.rng.below(f.sk.pk.ns));
  }
  for (auto _ : state) {
    auto c = f.sk.pk.eval(cts, coeffs);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PaillierEval);

void BM_ThresholdPartialDec(benchmark::State& state) {
  auto& f = fx();
  mpz_class c = f.tk.tpk.pk.enc(mpz_class(42), f.rng);
  for (auto _ : state) {
    auto p = tpdec(f.tk.tpk, f.tk.shares[0], c);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ThresholdPartialDec);

void BM_ThresholdCombine(benchmark::State& state) {
  auto& f = fx();
  mpz_class c = f.tk.tpk.pk.enc(mpz_class(42), f.rng);
  std::vector<unsigned> idx{1, 2, 3, 4};
  std::vector<mpz_class> partials;
  for (unsigned i : idx) partials.push_back(tpdec(f.tk.tpk, f.tk.shares[i - 1], c));
  for (auto _ : state) {
    auto m = tdec(f.tk.tpk, idx, partials);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ThresholdCombine);

void BM_ThresholdReshare(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    auto msg = tkres(f.tk.tpk, f.tk.shares[0], f.rng);
    benchmark::DoNotOptimize(msg);
  }
}
BENCHMARK(BM_ThresholdReshare);

void BM_VerifyReshare(benchmark::State& state) {
  auto& f = fx();
  auto msg = tkres(f.tk.tpk, f.tk.shares[0], f.rng);
  for (auto _ : state) {
    bool ok = verify_reshare(f.tk.tpk, msg);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_VerifyReshare);

void BM_PlaintextProve(benchmark::State& state) {
  auto& f = fx();
  mpz_class m = f.rng.below(f.sk.pk.ns), r;
  mpz_class c = f.sk.pk.enc(m, f.rng, &r);
  for (auto _ : state) {
    auto proof = prove_plaintext(f.sk.pk, c, SecretMpz(m), SecretMpz(r), f.rng);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_PlaintextProve);

void BM_PlaintextVerify(benchmark::State& state) {
  auto& f = fx();
  mpz_class m = f.rng.below(f.sk.pk.ns), r;
  mpz_class c = f.sk.pk.enc(m, f.rng, &r);
  auto proof = prove_plaintext(f.sk.pk, c, SecretMpz(m), SecretMpz(r), f.rng);
  for (auto _ : state) {
    bool ok = verify_plaintext(f.sk.pk, c, proof);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PlaintextVerify);

void BM_PdecProve(benchmark::State& state) {
  auto& f = fx();
  mpz_class c = f.tk.tpk.pk.enc(mpz_class(7), f.rng);
  mpz_class partial = tpdec(f.tk.tpk, f.tk.shares[0], c);
  for (auto _ : state) {
    auto proof = prove_pdec(f.tk.tpk, f.tk.shares[0], c, partial, f.rng);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_PdecProve);

void BM_PdecVerify(benchmark::State& state) {
  auto& f = fx();
  mpz_class c = f.tk.tpk.pk.enc(mpz_class(7), f.rng);
  mpz_class partial = tpdec(f.tk.tpk, f.tk.shares[0], c);
  auto proof = prove_pdec(f.tk.tpk, f.tk.shares[0], c, partial, f.rng);
  for (auto _ : state) {
    bool ok = verify_pdec(f.tk.tpk, 1, c, partial, proof);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PdecVerify);

}  // namespace

BENCHMARK_MAIN();
