// E10: chaos campaign — robustness under composed fault injection.
//
// Runs a seeded campaign of FaultSchedules (adversary corruption x link
// faults x wire-level faults) through the full protocol over NetBulletin,
// machine-checking the robustness contract on every run: in-bounds
// schedules deliver guaranteed output (possibly via the Section 5.4
// degradation retry), out-of-bounds schedules end in a classified
// FailureReport — never a crash, hang, or wrong output.  Then demonstrates
// the delta-debugging minimizer on a deliberately noisy failing schedule.
//
// The outcome histogram and minimizer cost land in BENCH_comm.json under
// "chaos_campaign" so robustness regressions are visible across PRs.
#include <cstdio>
#include <sstream>

#include "bench_json.hpp"
#include "chaos/campaign.hpp"
#include "chaos/minimize.hpp"

using namespace yoso;
using chaos::CampaignRunner;
using chaos::FaultSchedule;
using chaos::RunReport;

int main(int argc, char** argv) {
  const std::uint64_t seed = 42;
  const std::size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;

  std::printf("=== E10: chaos campaign, %zu seeded schedules (seed %llu) ===\n", count,
              static_cast<unsigned long long>(seed));
  std::size_t in_bounds = 0;
  auto summary = CampaignRunner::run_campaign(seed, count, [&](const RunReport& r) {
    in_bounds += r.in_bounds ? 1 : 0;
    if (!r.acceptable()) std::printf("UNACCEPTABLE: %s\n", r.to_json().c_str());
  });
  std::printf("in-bounds %zu / %zu;  correct %zu, recovered %zu, classified %zu\n", in_bounds,
              count, summary.correct, summary.recovered, summary.classified);
  std::printf("contract breaks: wrong-output %zu, crashes %zu, invariant violations %zu\n",
              summary.wrong_output, summary.crashed, summary.invariant_violations);

  // Minimizer demonstration: a 6-dimension schedule whose failure is really
  // driven by 2 of them (malicious + fail-stop at n = 6, t = 1).
  FaultSchedule planted;
  planted.seed = 11;
  planted.n = 6;
  planted.circuit_width = 1;
  planted.malicious = 2;
  planted.failstop = 1;
  planted.silenced = 1;
  planted.duplicate_prob = 0.1;
  planted.extra_delay_s = 0.01;
  planted.late_prob = 0.1;
  planted.late_delay_s = 0.5;
  auto res = chaos::ScheduleMinimizer::minimize(planted, [](const FaultSchedule& c) {
    RunReport r = CampaignRunner::run_one(c);
    return r.outcome != chaos::Outcome::Correct && r.outcome != chaos::Outcome::Recovered;
  });
  std::printf("\nminimizer: %u -> %u active fault dimensions in %zu predicate runs\n",
              planted.active_faults(), res.schedule.active_faults(), res.tests);
  std::printf("reproducer: %s\n", res.schedule.to_json().c_str());

  std::ostringstream json;
  json << "{\"seed\":" << seed << ",\"runs\":" << count << ",\"in_bounds\":" << in_bounds
       << ",\"correct\":" << summary.correct << ",\"recovered\":" << summary.recovered
       << ",\"classified\":" << summary.classified << ",\"wrong_output\":" << summary.wrong_output
       << ",\"crashed\":" << summary.crashed
       << ",\"invariant_violations\":" << summary.invariant_violations
       << ",\"minimizer\":{\"from_faults\":" << planted.active_faults()
       << ",\"to_faults\":" << res.schedule.active_faults() << ",\"tests\":" << res.tests << "}}";
  bench::merge_bench_json("BENCH_comm.json", "chaos_campaign", json.str());
  return summary.all_acceptable() ? 0 : 1;
}
