// E4: offline communication per gate vs. committee size n (Section 5.2).
//
// The paper: the offline phase costs O(n) broadcast elements per gate
// (Beaver contributions, wire randomness, epsilon/delta decryptions, and
// the KFF re-encryptions each contribute Theta(n) per gate).  This bench
// measures the real ledger across a sweep of n and prints the per-category
// breakdown for one configuration.
//
// The sweep itself lives in perf/sweep.hpp (tools/perf records the same
// points); this bench keeps the human-readable table and shape check.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "common/json.hpp"
#include "perf/sweep.hpp"

using namespace yoso;

int main() {
  std::printf("=== E4: offline broadcast elements per multiplication gate ===\n");
  std::printf("wide circuit of width n, |N| = 128\n\n");
  std::printf("%4s %3s %3s | %16s | %16s\n", "n", "t", "k", "offline elems/gate",
              "offline/(n*gate)");

  std::vector<perf::OfflinePoint> points;
  for (unsigned n : {4u, 6u, 8u, 12u, 16u}) {
    perf::OfflinePoint pt = perf::run_offline_point(n);
    const double per_gate = pt.offline_elems / static_cast<double>(pt.gates);
    std::printf("%4u %3u %3u | %16.1f | %16.2f\n", pt.n, pt.t, pt.k, per_gate, per_gate / n);
    points.push_back(std::move(pt));
  }

  const perf::OfflinePoint& first = points.front();
  const perf::OfflinePoint& last = points.back();
  const double first_ratio = first.offline_elems / static_cast<double>(first.gates);
  const double last_ratio = last.offline_elems / static_cast<double>(last.gates);
  std::printf("\nShape check (n: %u -> %u): offline elems/gate grew %.2fx over a %.1fx "
              "increase in n — paper predicts ~linear (O(n)).\n",
              first.n, last.n, last_ratio / first_ratio,
              static_cast<double>(last.n) / first.n);

  std::printf("\nPer-category offline breakdown at n = %u:\n", last.n);
  const json::Value report = json::parse(last.report);
  if (const json::Value* offline = report.find("offline")) {
    if (const json::Value* cats = offline->find("categories")) {
      for (const auto& [cat, e] : cats->members) {
        std::printf("  %-22s %8zu msgs %10zu elems %12zu bytes\n", cat.c_str(),
                    static_cast<std::size_t>(e.u64_or("messages", 0)),
                    static_cast<std::size_t>(e.u64_or("elements", 0)),
                    static_cast<std::size_t>(e.u64_or("bytes", 0)));
      }
    }
  }

  yoso::bench::merge_bench_json("BENCH_comm.json", "offline_comm",
                                perf::offline_comm_json(points));
  return 0;
}
