// E4: offline communication per gate vs. committee size n (Section 5.2).
//
// The paper: the offline phase costs O(n) broadcast elements per gate
// (Beaver contributions, wire randomness, epsilon/delta decryptions, and
// the KFF re-encryptions each contribute Theta(n) per gate).  This bench
// measures the real ledger across a sweep of n and prints the per-category
// breakdown for one configuration.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_json.hpp"
#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 20))));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  std::printf("=== E4: offline broadcast elements per multiplication gate ===\n");
  std::printf("wide circuit of width n, |N| = 128\n\n");
  std::printf("%4s %3s %3s | %16s | %16s\n", "n", "t", "k", "offline elems/gate",
              "offline/(n*gate)");

  double first_ratio = 0, last_ratio = 0;
  unsigned n_first = 0, n_last = 0;
  const Ledger* last_ledger = nullptr;
  static std::vector<YosoMpc*> keep;  // keep ledgers alive for the breakdown
  std::ostringstream json;
  json << "{";
  for (unsigned n : {4u, 6u, 8u, 12u, 16u}) {
    auto params = ProtocolParams::for_gap(n, 0.25, 128);
    Circuit c = wide_mul_circuit(n);
    auto* mpc = new YosoMpc(params, c, AdversaryPlan::honest(n), 9200 + n);
    keep.push_back(mpc);
    mpc->run(make_inputs(c, n));
    double per_gate =
        static_cast<double>(mpc->ledger().phase_total(Phase::Offline).elements) /
        static_cast<double>(c.num_mul_gates());
    std::printf("%4u %3u %3u | %16.1f | %16.2f\n", n, params.t, params.k, per_gate,
                per_gate / n);
    if (n_first != 0) json << ",";
    json << "\"n" << n << "\":" << mpc->ledger().report_json();
    if (n_first == 0) {
      n_first = n;
      first_ratio = per_gate;
    }
    n_last = n;
    last_ratio = per_gate;
    last_ledger = &mpc->ledger();
  }

  std::printf("\nShape check (n: %u -> %u): offline elems/gate grew %.2fx over a %.1fx "
              "increase in n — paper predicts ~linear (O(n)).\n",
              n_first, n_last, last_ratio / first_ratio,
              static_cast<double>(n_last) / n_first);

  std::printf("\nPer-category offline breakdown at n = %u:\n", n_last);
  for (const auto& [cat, e] : last_ledger->categories(Phase::Offline)) {
    std::printf("  %-22s %8zu msgs %10zu elems %12zu bytes\n", cat.c_str(), e.messages,
                e.elements, e.bytes);
  }

  json << "}";
  yoso::bench::merge_bench_json("BENCH_comm.json", "offline_comm", json.str());
  return 0;
}
