// E14: WAN/churn resilience — self-healing sessions under hostile networks.
//
// Runs the seeded churn campaign (FaultSchedule::random_churn): service-mode
// schedules layered with heterogeneous link classes (uniform WAN, geo mix,
// mobile edge), background churn realized as fail-stop departures at
// committee spawn, the per-phase silence watchdog, and the Section 5.4
// resubmission budget with capped exponential backoff.  Measures the outcome
// split (correct / recovered / classified), the retry economy (resubmits,
// watchdog timeouts, backoff seconds, bytes sunk in abandoned attempts), and
// asserts the resilience contract end-to-end: zero unacceptable runs, at
// least one schedule recovering via resubmission with its retry bytes
// balanced on the ledger, and a bit-for-bit identical re-run.
//
// Results land in BENCH_comm.json under "wan_churn".
//
// Usage: bench_wan_churn [count] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.hpp"
#include "chaos/campaign.hpp"
#include "common/json.hpp"

using namespace yoso;
using chaos::CampaignRunner;
using chaos::CampaignSummary;
using chaos::Outcome;
using chaos::RunReport;

int main(int argc, char** argv) {
  const std::size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("=== E14: WAN/churn resilience — %zu schedules (seed %llu) ===\n", count,
              static_cast<unsigned long long>(seed));

  std::size_t resubmits = 0, timeouts = 0, recovered_sessions = 0, sunk_bytes = 0;
  double backoff_s = 0;
  std::vector<std::string> reports;
  const CampaignSummary summary =
      CampaignRunner::run_churn_campaign(seed, count, [&](const RunReport& r) {
        resubmits += r.svc_resubmits;
        timeouts += r.svc_timeouts;
        recovered_sessions += r.svc_recovered;
        sunk_bytes += r.svc_sunk_bytes;
        backoff_s += r.svc_backoff_wait_s;
        reports.push_back(r.to_json());
      });

  std::printf("outcomes    correct %zu  recovered %zu  classified %zu  (unacceptable %zu)\n",
              summary.correct, summary.recovered, summary.classified,
              summary.unacceptable.size());
  std::printf("retries     %zu resubmits, %zu watchdog timeouts, %zu sessions recovered\n",
              resubmits, timeouts, recovered_sessions);
  std::printf("retry cost  %.3f virtual s backoff, %zu bytes sunk (ledger-visible)\n",
              backoff_s, sunk_bytes);

  // Bit-for-bit determinism: the same campaign seed must reproduce every
  // RunReport, retry accounting and ledger markers included.
  std::size_t replay_idx = 0;
  bool deterministic = true;
  CampaignRunner::run_churn_campaign(seed, count, [&](const RunReport& r) {
    deterministic = deterministic && reports[replay_idx++] == r.to_json();
  });
  std::printf("determinism %s\n", deterministic ? "bit-for-bit" : "MISMATCH");

  json::Writer w;
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(count));
  w.field("seed", seed);
  w.field("correct", static_cast<std::uint64_t>(summary.correct));
  w.field("recovered", static_cast<std::uint64_t>(summary.recovered));
  w.field("classified", static_cast<std::uint64_t>(summary.classified));
  w.field("unacceptable", static_cast<std::uint64_t>(summary.unacceptable.size()));
  w.field("resubmits", static_cast<std::uint64_t>(resubmits));
  w.field("timeouts", static_cast<std::uint64_t>(timeouts));
  w.field("recovered_sessions", static_cast<std::uint64_t>(recovered_sessions));
  w.field("backoff_wait_s", backoff_s);
  w.field("sunk_bytes", static_cast<std::uint64_t>(sunk_bytes));
  w.field("deterministic", deterministic ? 1 : 0);
  w.end_object();
  bench::merge_bench_json("BENCH_comm.json", "wan_churn", w.take());

  bool ok = deterministic && summary.all_acceptable();
  if (summary.recovered == 0) {
    std::printf("FAIL: no schedule recovered via Section 5.4 resubmission\n");
    ok = false;
  }
  if (summary.recovered > 0 && sunk_bytes == 0) {
    std::printf("FAIL: recovery without ledger-visible retry bytes\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
