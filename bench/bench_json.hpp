// Line-per-key JSON merge for the bench result files (BENCH_comm.json).
//
// The file is a JSON object whose every top-level key sits on exactly one
// line ("key": <single-line value>), so independent benches can each update
// their own key without parsing the others' values.  merge_bench_json
// rewrites the matching line (or appends a new one), keeping the rest.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace yoso::bench {

inline void merge_bench_json(const std::string& path, const std::string& key,
                             const std::string& value) {
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto q1 = line.find('"');
      if (q1 == std::string::npos) continue;  // braces / blank lines
      const auto q2 = line.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const auto colon = line.find(':', q2);
      if (colon == std::string::npos) continue;
      std::string k = line.substr(q1 + 1, q2 - q1 - 1);
      std::string v = line.substr(colon + 1);
      while (!v.empty() && (v.back() == ',' || v.back() == ' ' || v.back() == '\r')) v.pop_back();
      while (!v.empty() && v.front() == ' ') v.erase(v.begin());
      if (k != key) entries.emplace_back(std::move(k), std::move(v));
    }
  }
  entries.emplace_back(key, value);

  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "\"" << entries[i].first << "\": " << entries[i].second
        << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "}\n";
  std::printf("[%s updated: key \"%s\"]\n", path.c_str(), key.c_str());
}

}  // namespace yoso::bench
