// Line-per-key JSON merge for the bench result files (BENCH_comm.json).
//
// The implementation lives in perf/benchfile.hpp so tools/perf shares it;
// the file is parsed through the json::parse funnel (malformed input is an
// error, not a silent partial merge) and rewritten one top-level key per
// line, so independent benches can each update their own key while a plain
// `git diff` still shows which experiment moved.
#pragma once

#include "perf/benchfile.hpp"

namespace yoso::bench {

using yoso::perf::merge_bench_json;

}  // namespace yoso::bench
