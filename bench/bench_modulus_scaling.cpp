// Ablation: concrete security level (modulus size) vs. communication.
//
// Element *counts* are modulus-independent (verified: the counts column is
// constant), so deployments trade bytes and CPU for security margin
// without touching the protocol's scaling behaviour.  Production Paillier
// runs at |N| = 2048-3072; the sweep's byte column extrapolates linearly
// in the modulus size.
#include <chrono>
#include <cstdio>

#include "circuit/workloads.hpp"
#include "mpc/protocol.hpp"

using namespace yoso;

namespace {

std::vector<std::vector<mpz_class>> make_inputs(const Circuit& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<mpz_class>> inputs(c.num_clients());
  for (const auto& g : c.gates()) {
    if (g.kind == GateKind::Input) {
      inputs[g.client].push_back(mpz_class(static_cast<unsigned long>(rng.u64_below(1 << 16))));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  const unsigned n = 8;
  Circuit c = wide_mul_circuit(8);
  std::printf("=== Ablation: modulus size |N| at n = %u, eps = 0.25 ===\n\n", n);
  std::printf("%6s | %12s | %14s | %14s | %10s\n", "|N|", "total elems", "offline bytes",
              "online bytes", "wall s");

  for (unsigned bits : {128u, 192u, 256u, 384u}) {
    auto params = ProtocolParams::for_gap(n, 0.25, bits);
    auto t0 = std::chrono::steady_clock::now();
    YosoMpc mpc(params, c, AdversaryPlan::honest(n), 9800 + bits);
    mpc.run(make_inputs(c, bits));
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("%6u | %12zu | %14zu | %14zu | %10.2f\n", bits,
                mpc.ledger().total().elements,
                mpc.ledger().phase_total(Phase::Offline).bytes,
                mpc.ledger().phase_total(Phase::Online).bytes, secs);
  }
  std::printf("\nElement counts are identical across rows (the protocol's combinatorics\n"
              "do not depend on the modulus); bytes and wall time scale with |N|.\n");
  return 0;
}
